//! Constraint-propagation evaluation of `□Q(T)` and `◇Q(T)`.
//!
//! The brute-force oracle in [`crate::modal`] enumerates all
//! `|pool|^|Null(T)|` valuations (Proposition 7.4's upper bound taken
//! literally). Almost all of that space is wasted: target egds *force*
//! equalities between nulls, most pool constants are *inadmissible* for a
//! given null, and nulls in relations no dependency or query atom can
//! observe do not affect answers at all. This module evaluates the query
//! symbolically over the null-labeled instance first and only enumerates
//! the residual cross product:
//!
//! 1. **Forced-merge fixpoint.** Any syntactic egd-body match in `T`
//!    lifts through every valuation `v` (the matched rows map to rows of
//!    `v(T)` and constants are fixed), so `v(env(lhs)) = v(env(rhs))`
//!    must hold in every member of `Rep_D(T)`. Null/null and null/const
//!    violations therefore merge in place; a const/const violation
//!    proves `Rep_D(T) = ∅`. Iterated to fixpoint, this yields a
//!    quotient instance `T'` every representative factors through.
//! 2. **Inert-null elimination.** A null whose every occurrence is in a
//!    relation mentioned by no target dependency and no query atom can
//!    never influence `Σ_t`-satisfaction or an answer tuple, so it is
//!    pinned to an arbitrary pool constant instead of enumerated.
//!    (Disabled for FO queries and FO dependency bodies: active-domain
//!    semantics observes *every* value in the instance.)
//! 3. **Per-null admissible sets.** A constant `c` is inadmissible for
//!    null `ν` if `T'[ν ↦ c]` exhibits an egd-body match equating two
//!    distinct constants — that match persists under any completion, so
//!    no representative maps `ν` to `c`. An empty admissible set proves
//!    `Rep_D(T) = ∅`.
//! 4. **Forced disequalities.** If identifying `ν_i` with `ν_j` already
//!    equates two distinct constants under some egd, no representative
//!    assigns them the same value; the pair prunes the enumeration.
//! 5. **Residual enumeration.** The remaining mixed-radix product
//!    `∏ |A(ν)|` is split into index ranges on the worker pool
//!    ([`dex_core::MixedRadixValuations`]) and each candidate is checked
//!    against `Σ_t` exactly as the oracle does — pruning only ever
//!    removes valuations provably outside `Rep_D(T)`, so certain/maybe
//!    answers are *identical* to the oracle's, at a fraction of the
//!    space.
//!
//! Above a propagation-width cutoff the analysis is skipped and the old
//! oracle runs unchanged ([`PropagationReport::fell_back`]). Governed
//! variants tick the [`Governor`] once per residual candidate and, when
//! interrupted, return refinable sound/complete bound pairs
//! ([`GovernedAnswers::lower_bound`]/[`GovernedAnswers::upper_bound`]):
//! the lower bound is seeded with ground witnesses that survive every
//! valuation, the ◇ upper bound with the dependency-free unification
//! check of [`crate::possible`].

use crate::eval::{eval_query, Answers};
use crate::modal::{
    certain_answers_governed_par, certain_answers_par, checked_box_partial, checked_total,
    maybe_answers_governed_par, maybe_answers_par, GovernedAnswers, ModalError, ModalLimits,
    VALUATION_COST_NS,
};
use crate::possible::cq_is_maybe_answer;
use dex_core::govern::{Governor, Interrupt, Verdict};
use dex_core::{
    chunk_ranges, range_cost, BoundedExt, Instance, MixedRadixValuations, NullId, Pool, Symbol,
    Valuation, Value,
};
use dex_logic::dependency::Body;
use dex_logic::formula::Assignment;
use dex_logic::{matcher, ConjunctiveQuery, Query, Setting};
use dex_obs::Tracer;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Above this `|Null(T)| × |pool|` product the per-null analysis is
/// skipped and the brute-force oracle runs unchanged. The analysis does
/// `O(nulls × pool)` instance substitutions plus `O(nulls²)` pair
/// checks; anything near this bound is far outside enumerable range for
/// the oracle too, so the cutoff only guards against pathological
/// analysis cost on instances that will error out anyway.
const WIDTH_CUTOFF: usize = 100_000;

/// Forced-disequality extraction is `O(k²)` instance substitutions over
/// the `k` residual nulls; past this bound the (optional) pre-filter is
/// skipped — exactness never depends on it.
const DISEQ_PAIR_CAP: usize = 64;

/// The interrupted-◇ upper bound enumerates `|space|^arity` candidate
/// tuples through the unification check; skipped above this cap.
const DIAMOND_UPPER_CAP: u128 = 65_536;

/// What propagation did to the valuation space — surfaced through the
/// CLI and benches so "12 nulls answered interactively" is auditable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PropagationReport {
    /// Nulls in `T` before analysis.
    pub nulls: usize,
    /// Nulls eliminated by the egd forced-merge fixpoint.
    pub merged: usize,
    /// Nulls pinned as inert (unobservable by `Σ_t` and the query).
    pub inert: usize,
    /// Nulls left to enumerate.
    pub residual_nulls: usize,
    /// `|pool|^|Null(T)|` — what the oracle would enumerate (saturating).
    pub oracle_valuations: u128,
    /// `∏ |A(ν)|` over the residual nulls (saturating).
    pub residual_valuations: u128,
    /// Forced ν_i ≠ ν_j pairs pruning the enumeration.
    pub diseqs: usize,
    /// True iff the analysis was skipped and the oracle ran instead.
    pub fell_back: bool,
}

/// Outcome of the symbolic analysis phase.
enum Analysis {
    /// `Rep_D(T)` is provably empty: a const/const egd conflict, an
    /// empty admissible set, or nulls with an empty pool.
    EmptyRep(PropagationReport),
    /// The reduced enumeration problem.
    Residual(Box<Residual>),
    /// Analysis skipped (width cutoff); fall back to the oracle.
    TooWide(PropagationReport),
}

/// The residual enumeration problem left after propagation.
struct Residual {
    /// Quotient instance: forced merges applied, inert nulls pinned.
    t: Instance,
    /// Residual nulls, in enumeration order.
    nulls: Vec<NullId>,
    /// `domains[i]` is the admissible set `A(nulls[i])`.
    domains: Vec<Vec<Symbol>>,
    /// Index pairs `(i, j)` into `nulls` forced to take distinct values.
    diseqs: Vec<(usize, usize)>,
    report: PropagationReport,
}

impl Residual {
    fn total(&self) -> u128 {
        self.domains
            .iter()
            .map(|d| d.len() as u128)
            .fold(1u128, u128::saturating_mul)
    }

    /// True iff `w` respects every forced disequality.
    fn diseqs_ok(&self, w: &Valuation) -> bool {
        self.diseqs
            .iter()
            .all(|&(i, j)| w.get(self.nulls[i]) != w.get(self.nulls[j]))
    }
}

/// True iff some egd-body match in `inst` equates two *distinct
/// constants* — a violation no valuation can repair (valuations are the
/// identity on constants), so `Rep_D(inst) = ∅`.
fn const_conflict(setting: &Setting, inst: &Instance) -> bool {
    setting.egds.iter().any(|egd| {
        !matcher::for_each_match(&egd.body, inst, &Assignment::new(), &mut |env| {
            let a = env.get(egd.lhs).expect("egd lhs is body-bound");
            let b = env.get(egd.rhs).expect("egd rhs is body-bound");
            // Stop (conflict found) iff both sides are distinct constants.
            !(a != b && a.is_const() && b.is_const())
        })
    })
}

/// Applies every *forced* equality to `t` in place: egd violations whose
/// sides involve a null merge the two values (the equality holds in
/// every representative, so every representative factors through the
/// quotient); a const/const violation returns `None` (`Rep_D(T) = ∅`).
/// Returns the number of nulls eliminated. Terminates because each merge
/// removes one distinct value from the instance.
fn merge_fixpoint(setting: &Setting, t: &mut Instance) -> Option<usize> {
    let mut eliminated = 0usize;
    loop {
        let mut changed = false;
        for egd in &setting.egds {
            while let Some(env) = egd.first_violation(t) {
                let a = env.get(egd.lhs).expect("egd lhs is body-bound");
                let b = env.get(egd.rhs).expect("egd rhs is body-bound");
                match (a, b) {
                    (Value::Const(_), Value::Const(_)) => return None,
                    (Value::Null(_), Value::Const(_)) => {
                        t.merge_value(a, b);
                    }
                    (Value::Const(_), Value::Null(_)) => {
                        t.merge_value(b, a);
                    }
                    (Value::Null(x), Value::Null(y)) => {
                        // Deterministic orientation: larger id folds onto
                        // the smaller.
                        if x < y {
                            t.merge_value(b, a);
                        } else {
                            t.merge_value(a, b);
                        }
                    }
                }
                eliminated += 1;
                changed = true;
            }
        }
        if !changed {
            return Some(eliminated);
        }
    }
}

/// The relations whose rows `Σ_t` or the query can observe, or `None`
/// when observation is not relation-local: an FO dependency body or an
/// FO query ranges over the active domain, where *every* value in the
/// instance is visible.
fn observable_relations(setting: &Setting, q: &Query) -> Option<BTreeSet<Symbol>> {
    let mut obs = BTreeSet::new();
    for tgd in &setting.t_tgds {
        if matches!(tgd.body, Body::Fo(_)) {
            return None;
        }
        obs.extend(tgd.body.relations());
        obs.extend(tgd.head.iter().map(|a| a.rel));
    }
    for egd in &setting.egds {
        obs.extend(egd.body.iter().map(|a| a.rel));
    }
    match q {
        Query::Cq(cq) => obs.extend(cq.relations()),
        Query::Ucq(u) => {
            for d in &u.disjuncts {
                obs.extend(d.relations());
            }
        }
        Query::Fo(_) => return None,
    }
    Some(obs)
}

/// The relations each null occurs in.
fn null_occurrences(t: &Instance) -> BTreeMap<NullId, BTreeSet<Symbol>> {
    let mut occ: BTreeMap<NullId, BTreeSet<Symbol>> = BTreeMap::new();
    for atom in t.atoms() {
        for v in &atom.args {
            if let Value::Null(n) = v {
                occ.entry(*n).or_default().insert(atom.rel);
            }
        }
    }
    occ
}

/// The admissible set `A(ν) ⊆ pool`: constants whose substitution does
/// not already equate two distinct constants under some egd. One-step
/// only — deeper consequences are caught by the per-candidate `Σ_t`
/// check, which keeps the enumeration exact regardless.
fn admissible(setting: &Setting, t: &Instance, nu: NullId, pool: &[Symbol]) -> Vec<Symbol> {
    pool.iter()
        .copied()
        .filter(|&c| !const_conflict(setting, &t.rename_value(Value::Null(nu), Value::Const(c))))
        .collect()
}

/// Pairs of residual nulls that no representative maps to equal values:
/// identifying them already equates two distinct constants under some
/// egd, independently of which value the pair takes.
fn forced_diseqs(setting: &Setting, t: &Instance, nulls: &[NullId]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..nulls.len() {
        for j in i + 1..nulls.len() {
            let identified = t.rename_value(Value::Null(nulls[j]), Value::Null(nulls[i]));
            if const_conflict(setting, &identified) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Timestamp for pipeline-stage spans: the governor's clock when one is
/// available, otherwise 0 — the ungoverned path has no time source, so
/// its spans carry structure (nesting, event counts) but zero duration.
fn span_now(gov: Option<&Governor>) -> u64 {
    gov.map_or(0, |g| g.clock().now_ns())
}

/// The symbolic analysis phase: merge fixpoint, inert elimination,
/// admissible sets, forced disequalities. Each stage is wrapped in a
/// span on `tracer` so `dex trace` can break propagation time down.
fn analyze(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    tracer: &Tracer,
    gov: Option<&Governor>,
) -> Analysis {
    let all_nulls = t.nulls();
    let mut report = PropagationReport {
        nulls: all_nulls.len(),
        oracle_valuations: (pool.len() as u128).saturating_pow(all_nulls.len() as u32),
        ..PropagationReport::default()
    };
    if !all_nulls.is_empty() && pool.is_empty() {
        // No valuations exist at all, so Rep_D(T) is empty — mirroring
        // the oracle, whose empty enumeration finds no representative.
        return Analysis::EmptyRep(report);
    }
    if all_nulls.len().saturating_mul(pool.len()) > WIDTH_CUTOFF {
        report.fell_back = true;
        return Analysis::TooWide(report);
    }
    let mut tq = t.clone();
    let sp = tracer.span("merge_fixpoint", span_now(gov));
    let merged = merge_fixpoint(setting, &mut tq);
    sp.close(span_now(gov));
    match merged {
        None => return Analysis::EmptyRep(report),
        Some(merged) => report.merged = merged,
    }
    let sp = tracer.span("inert_elim", span_now(gov));
    let remaining: Vec<NullId> = tq.nulls().into_iter().collect();
    let mut residual_nulls = Vec::with_capacity(remaining.len());
    if let Some(obs) = observable_relations(setting, q) {
        let occ = null_occurrences(&tq);
        for nu in remaining {
            let inert = occ
                .get(&nu)
                .is_some_and(|rels| rels.iter().all(|r| !obs.contains(r)));
            if inert {
                tq = tq.rename_value(Value::Null(nu), Value::Const(pool[0]));
                report.inert += 1;
            } else {
                residual_nulls.push(nu);
            }
        }
    } else {
        residual_nulls = remaining;
    }
    sp.close(span_now(gov));
    let sp = tracer.span("admissible_sets", span_now(gov));
    let mut domains = Vec::with_capacity(residual_nulls.len());
    let mut empty_domain = false;
    for &nu in &residual_nulls {
        let dom = admissible(setting, &tq, nu, pool);
        if dom.is_empty() {
            empty_domain = true;
            break;
        }
        domains.push(dom);
    }
    sp.close(span_now(gov));
    if empty_domain {
        return Analysis::EmptyRep(report);
    }
    let sp = tracer.span("forced_diseqs", span_now(gov));
    let diseqs = if residual_nulls.len() <= DISEQ_PAIR_CAP {
        forced_diseqs(setting, &tq, &residual_nulls)
    } else {
        Vec::new()
    };
    sp.close(span_now(gov));
    report.residual_nulls = residual_nulls.len();
    report.diseqs = diseqs.len();
    let residual = Residual {
        t: tq,
        nulls: residual_nulls,
        domains,
        diseqs,
        report,
    };
    let mut residual = residual;
    residual.report.residual_valuations = residual.total();
    Analysis::Residual(Box::new(residual))
}

/// Tuples provably in `□Q(T)` with no enumeration at all: a body match
/// whose head tuple is all-constant and whose every inequality compares
/// two *distinct constants* transfers verbatim along any valuation (the
/// matched rows map into `v(T)`, constants are fixed), so the tuple is
/// in `Q(R)` for every `R ∈ Rep_D(T)`. Sound for arbitrary `T`; used to
/// seed the refinable lower bound of interrupted □ runs. FO queries
/// yield no witnesses (active-domain semantics does not transfer).
pub fn certain_ground_witnesses(q: &Query, t: &Instance) -> Answers {
    let mut out = Answers::new();
    let disjuncts: Vec<&ConjunctiveQuery> = match q {
        Query::Cq(c) => vec![c],
        Query::Ucq(u) => u.disjuncts.iter().collect(),
        Query::Fo(_) => return out,
    };
    for d in disjuncts {
        matcher::for_each_match(&d.atoms, t, &Assignment::new(), &mut |env| {
            let ineqs_ground =
                d.inequalities
                    .iter()
                    .all(|(s, t_)| match (env.term(*s), env.term(*t_)) {
                        (Some(a), Some(b)) => a != b && a.is_const() && b.is_const(),
                        _ => false,
                    });
            if ineqs_ground {
                let tuple: Vec<Value> = d
                    .head_vars
                    .iter()
                    .map(|&v| env.get(v).expect("head vars are safe"))
                    .collect();
                if tuple.iter().all(Value::is_const) {
                    out.insert(tuple);
                }
            }
            true
        });
    }
    out
}

/// A complete over-approximation of `◇Q(T)` for UCQs: candidate tuples
/// over the value space, classified by the dependency-free unification
/// check ([`cq_is_maybe_answer`]). `Rep` *with* target dependencies is a
/// subset of `Rep` without them, so any tuple the unconstrained check
/// rejects is definitely not a maybe-answer. Returns
/// `(inside, refuted)` partitioning the candidate space, or `None` when
/// the query is FO or the space exceeds [`DIAMOND_UPPER_CAP`].
fn diamond_upper_bound(q: &Query, t: &Instance, pool: &[Symbol]) -> Option<(Answers, Answers)> {
    let disjuncts: Vec<&ConjunctiveQuery> = match q {
        Query::Cq(c) => vec![c],
        Query::Ucq(u) => u.disjuncts.iter().collect(),
        Query::Fo(_) => return None,
    };
    let arity = q.arity();
    // Every answer of every representative draws its values from the
    // instance's constants and the valuation pool.
    let mut space: BTreeSet<Symbol> = t.constants();
    space.extend(pool.iter().copied());
    let space: Vec<Value> = space.into_iter().map(Value::Const).collect();
    let total = (space.len() as u128).saturating_pow(arity as u32);
    if total > DIAMOND_UPPER_CAP {
        return None;
    }
    let mut inside = Answers::new();
    let mut refuted = Answers::new();
    let mut tuple = vec![0usize; arity];
    loop {
        let candidate: Vec<Value> = tuple.iter().map(|&i| space[i]).collect();
        if disjuncts
            .iter()
            .any(|d| cq_is_maybe_answer(d, t, &candidate))
        {
            inside.insert(candidate);
        } else {
            refuted.insert(candidate);
        }
        // Advance the odometer over `space^arity`.
        let mut i = 0;
        loop {
            if i == arity {
                return Some((inside, refuted));
            }
            tuple[i] += 1;
            if tuple[i] < space.len() {
                break;
            }
            tuple[i] = 0;
            i += 1;
        }
        if space.is_empty() {
            return Some((inside, refuted));
        }
    }
}

/// `□Q(T)` by constraint propagation — answer-identical to
/// [`certain_answers_par`], enumerating only the residual space. Returns
/// `None` iff `Rep_D(T)` is empty, plus the propagation report.
pub fn certain_answers_propagated(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    exec: &Pool,
    tracer: &Tracer,
) -> Result<(Option<Answers>, PropagationReport), ModalError> {
    let r = match analyze(setting, q, t, pool, tracer, None) {
        Analysis::EmptyRep(report) => return Ok((None, report)),
        Analysis::TooWide(report) => {
            return certain_answers_par(setting, q, t, pool, limits, exec).map(|a| (a, report));
        }
        Analysis::Residual(r) => r,
    };
    let total = checked_total(r.total(), r.nulls.len(), pool.len(), limits)?;
    let sp = tracer.span("residual_enum", 0);
    let ranges = chunk_ranges(total, exec.effective_threads() * 4);
    let cancel = AtomicBool::new(false);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc: Option<Answers> = None;
            let vals = MixedRadixValuations::from_index(
                r.nulls.clone(),
                r.domains.clone(),
                u128::from(lo),
            );
            for w in vals.bounded(hi - lo) {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                if !r.diseqs_ok(&w) {
                    continue;
                }
                let ground = w.apply(&r.t);
                if setting.satisfies_target(&ground) {
                    let ans = eval_query(q, &ground);
                    let next: Answers = match acc.take() {
                        None => ans,
                        Some(prev) => prev.intersection(&ans).cloned().collect(),
                    };
                    let hit_bottom = next.is_empty();
                    acc = Some(next);
                    if hit_bottom {
                        cancel.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            acc
        },
    );
    let mut acc: Option<Answers> = None;
    for p in partials.into_iter().flatten() {
        acc = Some(match acc.take() {
            None => p,
            Some(prev) => prev.intersection(&p).cloned().collect(),
        });
    }
    sp.close(0);
    Ok((acc, r.report))
}

/// `◇Q(T)` by constraint propagation — answer-identical to
/// [`maybe_answers_par`].
pub fn maybe_answers_propagated(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    exec: &Pool,
    tracer: &Tracer,
) -> Result<(Answers, PropagationReport), ModalError> {
    let r = match analyze(setting, q, t, pool, tracer, None) {
        Analysis::EmptyRep(report) => return Ok((Answers::new(), report)),
        Analysis::TooWide(report) => {
            return maybe_answers_par(setting, q, t, pool, limits, exec).map(|a| (a, report));
        }
        Analysis::Residual(r) => r,
    };
    let total = checked_total(r.total(), r.nulls.len(), pool.len(), limits)?;
    let sp = tracer.span("residual_enum", 0);
    let ranges = chunk_ranges(total, exec.effective_threads() * 4);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc = Answers::new();
            let vals = MixedRadixValuations::from_index(
                r.nulls.clone(),
                r.domains.clone(),
                u128::from(lo),
            );
            for w in vals.bounded(hi - lo) {
                if !r.diseqs_ok(&w) {
                    continue;
                }
                let ground = w.apply(&r.t);
                if setting.satisfies_target(&ground) {
                    acc.extend(eval_query(q, &ground));
                }
            }
            acc
        },
    );
    let mut out = Answers::new();
    for p in partials {
        out.extend(p);
    }
    sp.close(0);
    Ok((out, r.report))
}

/// Governed [`certain_answers_propagated`]: ticks once per residual
/// candidate. On interrupt the verdicts are assembled exactly as the
/// oracle's ([`checked_box_partial`]) and the refinable lower bound is
/// seeded with [`certain_ground_witnesses`] — tuples every representative
/// answers, whatever was left unexplored.
pub fn certain_answers_propagated_governed(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    gov: &Governor,
    exec: &Pool,
    tracer: &Tracer,
) -> Result<(Option<GovernedAnswers>, PropagationReport), ModalError> {
    let r = match analyze(setting, q, t, pool, tracer, Some(gov)) {
        Analysis::EmptyRep(report) => return Ok((None, report)),
        Analysis::TooWide(report) => {
            let g = certain_answers_governed_par(setting, q, t, pool, limits, gov, exec)?;
            let g = g.map(|g| seed_box_lower_bound(g, q, t));
            return Ok((g, report));
        }
        Analysis::Residual(r) => r,
    };
    let total = checked_total(r.total(), r.nulls.len(), pool.len(), limits)?;
    let sp = tracer.span("residual_enum", span_now(Some(gov)));
    struct BoxPartial {
        acc: Option<Answers>,
        refuted: Answers,
        interrupt: Option<Interrupt>,
    }
    let ranges = chunk_ranges(total, exec.effective_threads() * 4);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc: Option<Answers> = None;
            let mut refuted = Answers::new();
            let vals = MixedRadixValuations::from_index(
                r.nulls.clone(),
                r.domains.clone(),
                u128::from(lo),
            );
            for w in vals.bounded(hi - lo) {
                if let Err(i) = gov.check() {
                    return BoxPartial {
                        acc,
                        refuted,
                        interrupt: Some(i),
                    };
                }
                if !r.diseqs_ok(&w) {
                    continue;
                }
                let ground = w.apply(&r.t);
                if setting.satisfies_target(&ground) {
                    let ans = eval_query(q, &ground);
                    acc = Some(match acc.take() {
                        None => ans,
                        Some(prev) => {
                            let kept: Answers = prev.intersection(&ans).cloned().collect();
                            refuted.extend(prev.difference(&kept).cloned());
                            kept
                        }
                    });
                }
            }
            BoxPartial {
                acc,
                refuted,
                interrupt: None,
            }
        },
    );
    let mut acc: Option<Answers> = None;
    let mut refuted = Answers::new();
    let mut interrupt: Option<Interrupt> = None;
    for p in partials {
        refuted.extend(p.refuted);
        if interrupt.is_none() {
            interrupt = p.interrupt;
        }
        if let Some(part) = p.acc {
            acc = Some(match acc.take() {
                None => part,
                Some(prev) => {
                    let kept: Answers = prev.intersection(&part).cloned().collect();
                    refuted.extend(prev.difference(&kept).cloned());
                    refuted.extend(part.difference(&kept).cloned());
                    kept
                }
            });
        }
    }
    sp.close(span_now(Some(gov)));
    Ok(match interrupt {
        None => (acc.map(GovernedAnswers::complete), r.report),
        Some(i) => {
            let g = seed_box_lower_bound(checked_box_partial(acc, refuted, i), q, &r.t);
            (Some(g), r.report)
        }
    })
}

/// Moves [`certain_ground_witnesses`] into `proven` on an interrupted □
/// run: they are in every representative's answer set, so they can never
/// be refuted and need not stay undetermined.
fn seed_box_lower_bound(mut g: GovernedAnswers, q: &Query, t: &Instance) -> GovernedAnswers {
    if g.interrupt.is_none() {
        return g;
    }
    for w in certain_ground_witnesses(q, t) {
        debug_assert!(
            !g.refuted.contains(&w),
            "a ground witness is in every representative's answers"
        );
        g.undetermined.remove(&w);
        g.proven.insert(w);
    }
    g
}

/// Governed [`maybe_answers_propagated`]: ticks once per residual
/// candidate. On interrupt, instead of the oracle's unbounded `Unknown`
/// default, the verdicts are completed with the dependency-free ◇ upper
/// bound when affordable: tuples failing the unification check are
/// *refuted*, the rest stay undetermined — giving interrupted ◇ runs a
/// finite `upper_bound()`.
pub fn maybe_answers_propagated_governed(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    gov: &Governor,
    exec: &Pool,
    tracer: &Tracer,
) -> Result<(GovernedAnswers, PropagationReport), ModalError> {
    let r = match analyze(setting, q, t, pool, tracer, Some(gov)) {
        Analysis::EmptyRep(report) => {
            return Ok((GovernedAnswers::complete(Answers::new()), report));
        }
        Analysis::TooWide(report) => {
            let g = maybe_answers_governed_par(setting, q, t, pool, limits, gov, exec)?;
            return Ok((seed_diamond_upper_bound(g, q, t, pool), report));
        }
        Analysis::Residual(r) => r,
    };
    let total = checked_total(r.total(), r.nulls.len(), pool.len(), limits)?;
    let sp = tracer.span("residual_enum", span_now(Some(gov)));
    let ranges = chunk_ranges(total, exec.effective_threads() * 4);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc = Answers::new();
            let vals = MixedRadixValuations::from_index(
                r.nulls.clone(),
                r.domains.clone(),
                u128::from(lo),
            );
            for w in vals.bounded(hi - lo) {
                if let Err(i) = gov.check() {
                    return (acc, Some(i));
                }
                if !r.diseqs_ok(&w) {
                    continue;
                }
                let ground = w.apply(&r.t);
                if setting.satisfies_target(&ground) {
                    acc.extend(eval_query(q, &ground));
                }
            }
            (acc, None)
        },
    );
    let mut proven = Answers::new();
    let mut interrupt: Option<Interrupt> = None;
    for (p, i) in partials {
        proven.extend(p);
        if interrupt.is_none() {
            interrupt = i;
        }
    }
    sp.close(span_now(Some(gov)));
    Ok(match interrupt {
        None => (GovernedAnswers::complete(proven), r.report),
        Some(i) => {
            let g = GovernedAnswers {
                proven,
                refuted: Answers::new(),
                undetermined: Answers::new(),
                default: Verdict::Unknown(i.reason),
                interrupt: Some(i),
            };
            (seed_diamond_upper_bound(g, q, &r.t, pool), r.report)
        }
    })
}

/// Upgrades an interrupted ◇ run's unbounded `Unknown` default to a
/// finite bound pair via [`diamond_upper_bound`], when affordable.
fn seed_diamond_upper_bound(
    mut g: GovernedAnswers,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
) -> GovernedAnswers {
    if g.interrupt.is_none() || !matches!(g.default, Verdict::Unknown(_)) {
        return g;
    }
    if let Some((inside, refuted)) = diamond_upper_bound(q, t, pool) {
        debug_assert!(
            g.proven.is_subset(&inside),
            "explored maybe-answers pass the unconstrained check"
        );
        g.undetermined = inside.difference(&g.proven).cloned().collect();
        g.refuted = refuted;
        // Tuples outside the candidate space use values no representative
        // contains, so they are definitely out.
        g.default = Verdict::False;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_instance, parse_query, parse_setting};

    fn c(name: &str) -> Value {
        Value::konst(name)
    }

    fn keyed_setting() -> Setting {
        parse_setting(
            "source { P/1 }
             target { F/2, G/2 }
             st { P(x) -> exists z . F(x,z); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap()
    }

    fn pool_for(t: &Instance, q: &Query) -> Vec<Symbol> {
        crate::modal::answer_pool(t, q, [])
    }

    fn exec() -> Pool {
        Pool::seq()
    }

    fn tr() -> Tracer {
        Tracer::off()
    }

    #[test]
    fn merge_fixpoint_pins_keyed_nulls() {
        let d = keyed_setting();
        let mut t = parse_instance("F(a,_1). F(a,c). F(b,_2). F(b,_3).").unwrap();
        let merged = merge_fixpoint(&d, &mut t).unwrap();
        // _1 ↦ c (null/const), _2/_3 unified (null/null).
        assert_eq!(merged, 2);
        assert_eq!(t.nulls().len(), 1);
        assert!(t.contains(&dex_core::Atom::of("F", vec![c("a"), c("c")])));
    }

    #[test]
    fn merge_fixpoint_detects_unsatisfiable_egd() {
        let d = keyed_setting();
        let mut t = parse_instance("F(a,b). F(a,c).").unwrap();
        assert!(merge_fixpoint(&d, &mut t).is_none());
    }

    #[test]
    fn merge_fixpoint_cascades() {
        // _1 merges with c via the first pair; the merged instance then
        // exposes a second forced merge for _2.
        let d = keyed_setting();
        let mut t = parse_instance("F(a,_1). F(a,c). F(_1,_2). F(c,d).").unwrap();
        let merged = merge_fixpoint(&d, &mut t).unwrap();
        assert_eq!(merged, 2);
        assert!(t.is_ground());
        assert!(t.contains(&dex_core::Atom::of("F", vec![c("c"), c("d")])));
    }

    #[test]
    fn propagated_equals_oracle_on_keyed_instance() {
        let d = keyed_setting();
        let t = parse_instance("F(a,_1). F(a,c). G(_2,b).").unwrap();
        let q = parse_query("Q(x,y) :- F(x,y)").unwrap();
        let pool = pool_for(&t, &q);
        let lim = ModalLimits::default();
        let (prop, report) =
            certain_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        let oracle = crate::modal::certain_answers(&d, &q, &t, &pool, &lim).unwrap();
        assert_eq!(prop, oracle);
        // _1 pinned by the egd; _2 inert (G is not in the query or Σ_t
        // bodies — the st-tgd head F only): nothing left to enumerate.
        assert_eq!(report.merged, 1);
        assert_eq!(report.inert, 1);
        assert_eq!(report.residual_valuations, 1);
        let (prop_maybe, _) =
            maybe_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        let oracle_maybe = crate::modal::maybe_answers(&d, &q, &t, &pool, &lim).unwrap();
        assert_eq!(prop_maybe, oracle_maybe);
    }

    #[test]
    fn propagated_detects_empty_rep() {
        let d = keyed_setting();
        let t = parse_instance("F(a,b). F(a,c).").unwrap();
        let q = parse_query("Q(x) :- F(x,y)").unwrap();
        let pool = pool_for(&t, &q);
        let lim = ModalLimits::default();
        let (ans, _) = certain_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        assert_eq!(ans, None);
        assert_eq!(
            crate::modal::certain_answers(&d, &q, &t, &pool, &lim).unwrap(),
            None
        );
        let (maybe, _) = maybe_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        assert!(maybe.is_empty());
    }

    #[test]
    fn propagation_succeeds_where_the_oracle_overflows() {
        // 12 redundant nulls all pinned by the key egd: the oracle's
        // space is |pool|^12 (far past the default limit) while the
        // residual is a single candidate.
        let d = keyed_setting();
        let mut text = String::new();
        for i in 0..12 {
            text.push_str(&format!("F(a{i},_{i}). F(a{i},c{i}). "));
        }
        let t = parse_instance(&text).unwrap();
        let q = parse_query("Q(x,y) :- F(x,y)").unwrap();
        let pool = pool_for(&t, &q);
        let lim = ModalLimits::default();
        assert!(crate::modal::certain_answers(&d, &q, &t, &pool, &lim).is_err());
        let (ans, report) =
            certain_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        let ans = ans.unwrap();
        assert_eq!(ans.len(), 12);
        assert_eq!(report.merged, 12);
        assert_eq!(report.residual_valuations, 1);
        assert!(report.oracle_valuations > 1u128 << 64 || report.oracle_valuations > 5_000_000);
    }

    #[test]
    fn forced_diseqs_prune_without_changing_answers() {
        // Two key-constrained nulls forced apart: v(_1) = v(_2) would
        // equate b and d.
        let d = keyed_setting();
        let t = parse_instance("F(_1,b). F(_2,d).").unwrap();
        let q = parse_query("Q() :- F(x,b), F(x,d)").unwrap();
        let pool = pool_for(&t, &q);
        let lim = ModalLimits::default();
        let (prop, report) =
            certain_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        assert_eq!(report.diseqs, 1);
        let oracle = crate::modal::certain_answers(&d, &q, &t, &pool, &lim).unwrap();
        assert_eq!(prop, oracle);
        let (pm, _) = maybe_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        let om = crate::modal::maybe_answers(&d, &q, &t, &pool, &lim).unwrap();
        assert_eq!(pm, om);
    }

    #[test]
    fn ground_witnesses_are_sound() {
        let t = parse_instance("F(a,b). F(a,_1). G(_2,c).").unwrap();
        let q = parse_query("Q(x,y) :- F(x,y), x != y").unwrap();
        let w = certain_ground_witnesses(&q, &t);
        // (a,b) has an all-constant witness with a ≠ b; (a,_1) does not.
        assert_eq!(w, Answers::from([vec![c("a"), c("b")]]));
    }

    #[test]
    fn governed_propagation_returns_refinable_bounds() {
        let d = keyed_setting();
        let t = parse_instance("F(a,b). G(_1,_2).").unwrap();
        // G is mentioned by the query, so its nulls are residual.
        let q = parse_query("Q(x,y) :- F(x,y); Q(x,y) :- G(x,y)").unwrap();
        let pool = pool_for(&t, &q);
        let lim = ModalLimits::default();
        let exec = exec();
        // Exact answers for reference.
        let (exact_box, _) =
            certain_answers_propagated(&d, &q, &t, &pool, &lim, &exec, &tr()).unwrap();
        let exact_box = exact_box.unwrap();
        let (exact_dia, _) =
            maybe_answers_propagated(&d, &q, &t, &pool, &lim, &exec, &tr()).unwrap();
        for fuel in [1u64, 3, 7, 20] {
            let gov = Governor::unlimited().with_fuel(fuel);
            let (g, _) =
                certain_answers_propagated_governed(&d, &q, &t, &pool, &lim, &gov, &exec, &tr())
                    .unwrap();
            let g = g.unwrap();
            g.validate().unwrap();
            assert!(g.lower_bound().is_subset(&exact_box), "fuel {fuel}");
            if let Some(upper) = g.upper_bound() {
                assert!(exact_box.is_subset(&upper), "fuel {fuel}");
            }
            // The ground witness (a,b) is proven even at fuel 1.
            assert!(g.lower_bound().contains(&vec![c("a"), c("b")]));

            let gov = Governor::unlimited().with_fuel(fuel);
            let (g, _) =
                maybe_answers_propagated_governed(&d, &q, &t, &pool, &lim, &gov, &exec, &tr())
                    .unwrap();
            g.validate().unwrap();
            assert!(g.lower_bound().is_subset(&exact_dia), "fuel {fuel}");
            if let Some(upper) = g.upper_bound() {
                assert!(exact_dia.is_subset(&upper), "fuel {fuel}");
            } else {
                assert!(g.is_refinable());
            }
        }
        // Unlimited fuel: complete and exact.
        let gov = Governor::unlimited();
        let (g, _) =
            certain_answers_propagated_governed(&d, &q, &t, &pool, &lim, &gov, &exec, &tr())
                .unwrap();
        let g = g.unwrap();
        assert!(g.is_complete() && !g.is_refinable());
        assert_eq!(g.proven, exact_box);
        assert_eq!(g.upper_bound(), Some(exact_box));
    }

    #[test]
    fn fo_queries_disable_inert_elimination_but_stay_exact() {
        let d = keyed_setting();
        let t = parse_instance("F(a,_1). F(a,c). G(_2,b).").unwrap();
        // FO query with negation: sensitive to the active domain.
        let q = parse_query("Q(x) := exists y . (F(x,y) & !G(y,x))").unwrap();
        let pool = pool_for(&t, &q);
        let lim = ModalLimits::default();
        let (prop, report) =
            certain_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        assert_eq!(report.inert, 0);
        let oracle = crate::modal::certain_answers(&d, &q, &t, &pool, &lim).unwrap();
        assert_eq!(prop, oracle);
        let (pm, _) = maybe_answers_propagated(&d, &q, &t, &pool, &lim, &exec(), &tr()).unwrap();
        let om = crate::modal::maybe_answers(&d, &q, &t, &pool, &lim).unwrap();
        assert_eq!(pm, om);
    }

    #[test]
    fn parallel_propagation_is_deterministic() {
        let d = keyed_setting();
        let t = parse_instance("F(a,_1). F(a,c). G(_2,_3). G(b,_2).").unwrap();
        let q = parse_query("Q(x,y) :- G(x,y)").unwrap();
        let pool = pool_for(&t, &q);
        let lim = ModalLimits::default();
        let seq = certain_answers_propagated(&d, &q, &t, &pool, &lim, &Pool::seq(), &tr()).unwrap();
        for threads in [2usize, 8] {
            let exec = Pool::new(threads).with_threshold_ns(0);
            let par = certain_answers_propagated(&d, &q, &t, &pool, &lim, &exec, &tr()).unwrap();
            assert_eq!(seq.0, par.0, "threads {threads}");
            let sm =
                maybe_answers_propagated(&d, &q, &t, &pool, &lim, &Pool::seq(), &tr()).unwrap();
            let pm = maybe_answers_propagated(&d, &q, &t, &pool, &lim, &exec, &tr()).unwrap();
            assert_eq!(sm.0, pm.0, "threads {threads}");
        }
    }
}
