//! The *classical* (open-world) certain-answer semantics of Section 2,
//! for comparison with the CWA semantics:
//!
//! - `certain_D(Q,S)`: tuples in `Q(T)` for **every** solution `T`;
//! - `u-certain_D(Q,S)`: tuples in `Q(T)` for every **universal**
//!   solution `T` ([FKP05]).
//!
//! Neither is directly computable by enumeration (there are infinitely
//! many solutions), but for unions of conjunctive queries the classical
//! theorem of Fagin, Kolaitis, Miller and Popa applies: both equal the
//! null-free answers of `Q` on any universal solution,
//! `certain_D(Q,S) = u-certain_D(Q,S) = Q(T)↓` — the same naive
//! evaluation the CWA semantics use (Lemma 7.7), which is why the
//! semantics only diverge beyond UCQs (Section 3's anomalies are FO).

use crate::eval::{drop_null_tuples, eval_query, Answers};
use dex_chase::{canonical_universal_solution, ChaseBudget, ChaseError};
use dex_core::Instance;
use dex_logic::{Query, Setting};

/// The classical certain answers of a **plain UCQ** (no inequalities),
/// via the FKMP theorem: `Q(CanonicalUniversalSolution)↓`.
///
/// # Panics
/// Debug-asserts that `q` is a plain UCQ; for other query classes the
/// classical certain answers are not computable this way (and for FO
/// queries not computable at all in general — see Section 3).
pub fn classical_certain_ucq(
    setting: &Setting,
    source: &Instance,
    q: &Query,
    budget: &ChaseBudget,
) -> Result<Answers, ChaseError> {
    debug_assert!(
        q.is_plain_ucq(),
        "classical certain answers via naive evaluation require a plain UCQ"
    );
    let canon = canonical_universal_solution(setting, source, budget)?;
    Ok(drop_null_tuples(&eval_query(q, &canon)))
}

/// An upper bound on the classical certain answers of an arbitrary query:
/// the intersection of `Q` over the given finite set of solutions
/// (Section 3 uses exactly this with hand-picked counterexample
/// solutions to pin the anomaly down).
pub fn certain_upper_bound(q: &Query, solutions: &[Instance]) -> Answers {
    let mut acc: Option<Answers> = None;
    for t in solutions {
        let a = eval_query(q, t);
        acc = Some(match acc {
            None => a,
            Some(prev) => prev.intersection(&a).cloned().collect(),
        });
    }
    acc.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{answers, Semantics};
    use dex_logic::{parse_instance, parse_query, parse_setting};

    fn example_2_1() -> (Setting, Instance) {
        let setting = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }
             t {
               d3: F(y,x) -> exists z . G(x,z);
               d4: F(x,y) & F(x,z) -> y = z;
             }",
        )
        .unwrap();
        (setting, parse_instance("M(a,b). N(a,b). N(a,c).").unwrap())
    }

    /// For plain UCQs the classical and CWA certain answers coincide
    /// (both are `Q(T)↓` on a universal solution).
    #[test]
    fn classical_and_cwa_coincide_on_ucqs() {
        let (d, s) = example_2_1();
        for qt in [
            "Q(x,y) :- E(x,y)",
            "Q(x) :- F(x,y), G(y,z)",
            "Q() :- G(x,y)",
        ] {
            let q = parse_query(qt).unwrap();
            let classical = classical_certain_ucq(&d, &s, &q, &ChaseBudget::default()).unwrap();
            let cwa = answers(&d, &s, &q, Semantics::Certain).unwrap();
            assert_eq!(classical, cwa, "query {qt}");
        }
    }

    /// The Section 3 shape: the upper-bound intersection over the copy
    /// and the paper's counterexample solution loses the b-cycle.
    #[test]
    fn upper_bound_reproduces_the_anomaly() {
        let copy = parse_instance("Ep(a0,a1). Ep(a1,a0). Ep(b0,b1). Ep(b1,b0). Pp(a0).").unwrap();
        let mut counterexample = copy.clone();
        counterexample.insert(dex_core::Atom::of("Pp", vec![dex_core::Value::konst("a1")]));
        let q = parse_query("Q(x) := Pp(x) | exists y,z . (Pp(y) & Ep(y,z) & !Pp(z))").unwrap();
        let bound = certain_upper_bound(&q, &[copy.clone(), counterexample]);
        // On the copy alone, all 4 nodes answer; the intersection keeps
        // only the a-nodes.
        assert_eq!(eval_query(&q, &copy).len(), 4);
        assert_eq!(bound.len(), 2);
    }

    #[test]
    fn empty_solution_list_gives_empty_bound() {
        let q = parse_query("Q(x) :- P(x)").unwrap();
        assert!(certain_upper_bound(&q, &[]).is_empty());
    }
}
