//! Certain and maybe answers of a query on a *single* target instance:
//! `□Q(T) = ⋂_{R ∈ Rep_D(T)} Q(R)` and `◇Q(T) = ⋃_{R ∈ Rep_D(T)} Q(R)`
//! (Section 7.1).
//!
//! `Rep_D(T)` is the set of complete instances `v(T)` for valuations
//! `v: Null(T) → Const` with `v(T) ⊨ Σ_t`. The reference implementation
//! enumerates valuations into the *standard pool* — the constants of `T`,
//! the query and the source plus `|Null(T)|` fresh constants — which is
//! sufficient up to isomorphism. Its cost is `|pool|^|Null(T)|`, matching
//! the paper's co-NP/NP data-complexity upper bounds (Proposition 7.4);
//! [`ucq_certain_answers`] is the polynomial fast path of Lemma 7.7.

use crate::eval::{drop_null_tuples, eval_query, Answers};
use dex_core::{Instance, Symbol, ValuationIter};
use dex_logic::{Query, Setting};
use std::collections::BTreeSet;
use std::fmt;

/// Limits on the valuation enumeration.
#[derive(Copy, Clone, Debug)]
pub struct ModalLimits {
    /// Maximum number of valuations to enumerate (`|pool|^|nulls|`).
    pub max_valuations: u128,
}

impl Default for ModalLimits {
    fn default() -> ModalLimits {
        ModalLimits {
            max_valuations: 5_000_000,
        }
    }
}

/// Errors from the modal-answer computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModalError {
    /// The valuation space exceeds the configured limit.
    TooManyValuations { nulls: usize, pool: usize },
}

impl fmt::Display for ModalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModalError::TooManyValuations { nulls, pool } => write!(
                f,
                "valuation space {pool}^{nulls} exceeds the configured limit"
            ),
        }
    }
}

impl std::error::Error for ModalError {}

/// The constants a query mentions (for pool construction).
fn query_constants(q: &Query) -> BTreeSet<Symbol> {
    match q {
        Query::Cq(q) => q.constants(),
        Query::Ucq(q) => q.constants(),
        Query::Fo(q) => q.formula.constants(),
    }
}

/// The valuation pool for answering `q` on `t` given extra context
/// constants (e.g. the source's): `Const(t) ∪ extra ∪ Const(q)` plus
/// `|Null(t)|` fresh constants.
pub fn answer_pool(
    t: &Instance,
    q: &Query,
    extra: impl IntoIterator<Item = Symbol>,
) -> Vec<Symbol> {
    let mut ctx: BTreeSet<Symbol> = query_constants(q);
    ctx.extend(extra);
    dex_core::standard_pool(t, ctx)
}

/// Enumerates `Rep_D(T)` over `pool`, calling `f` on each member.
/// Returns the number of members visited.
pub fn for_each_rep(
    setting: &Setting,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    f: &mut dyn FnMut(&Instance),
) -> Result<u64, ModalError> {
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let it = ValuationIter::new(nulls.iter().copied(), pool.to_vec());
    if it.total() > limits.max_valuations {
        return Err(ModalError::TooManyValuations {
            nulls: nulls.len(),
            pool: pool.len(),
        });
    }
    let mut count = 0u64;
    for v in it {
        let ground = v.apply(t);
        if setting.satisfies_target(&ground) {
            f(&ground);
            count += 1;
        }
    }
    Ok(count)
}

/// `□Q(T)`: tuples in `Q(R)` for every `R ∈ Rep_D(T)`. Returns the
/// answers, or `None` if `Rep_D(T)` is empty (then `□Q(T)` is the set of
/// all tuples; the paper's solutions always have nonempty `Rep` since
/// valuations of solutions satisfying `Σ_t` exist, but arbitrary `T` may
/// not).
pub fn certain_answers(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
) -> Result<Option<Answers>, ModalError> {
    let mut acc: Option<Answers> = None;
    for_each_rep(setting, t, pool, limits, &mut |r| {
        let ans = eval_query(q, r);
        acc = Some(match acc.take() {
            None => ans,
            Some(prev) => prev.intersection(&ans).cloned().collect(),
        });
    })?;
    Ok(acc)
}

/// `◇Q(T)`: tuples in `Q(R)` for some `R ∈ Rep_D(T)`.
pub fn maybe_answers(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
) -> Result<Answers, ModalError> {
    let mut acc = Answers::new();
    for_each_rep(setting, t, pool, limits, &mut |r| {
        acc.extend(eval_query(q, r));
    })?;
    Ok(acc)
}

/// Lemma 7.7's polynomial fast path: for a plain UCQ `Q` and a
/// CWA-solution `T`, `□Q(T) = Q(T)↓` (naive evaluation, then drop tuples
/// with nulls). Only sound when `t` is a CWA-solution.
pub fn ucq_certain_answers(q: &Query, t: &Instance) -> Answers {
    debug_assert!(q.is_plain_ucq(), "fast path requires a plain UCQ");
    drop_null_tuples(&eval_query(q, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::Value;
    use dex_logic::{parse_instance, parse_query, parse_setting};

    fn c(name: &str) -> Value {
        Value::konst(name)
    }

    /// A setting with one egd so Rep filters valuations.
    fn keyed_setting() -> Setting {
        parse_setting(
            "source { P/1 }
             target { F/2, G/2 }
             st { P(x) -> exists z . F(x,z); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap()
    }

    fn free_setting() -> Setting {
        parse_setting(
            "source { P/1 }
             target { F/2, G/2 }
             st { P(x) -> exists z . F(x,z); }",
        )
        .unwrap()
    }

    #[test]
    fn certain_answers_quantify_over_all_valuations() {
        let d = free_setting();
        let t = parse_instance("F(a,_1). G(_1,b).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        // _1 can be anything: no certain F-successor value.
        let ans = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        assert!(ans.is_empty());
        // But the Boolean "a has an F-successor" is certain.
        let qb = parse_query("Q() :- F(a,x)").unwrap();
        let ans = certain_answers(&d, &qb, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn maybe_answers_union_over_valuations() {
        let d = free_setting();
        let t = parse_instance("F(a,_1).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, [Symbol::intern("b")]);
        let ans = maybe_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        // _1 ranges over the whole pool: a, b and one fresh constant.
        assert_eq!(ans.len(), pool.len());
    }

    #[test]
    fn rep_filters_by_target_dependencies() {
        let d = keyed_setting();
        // Two F-atoms with distinct nulls: valuations merging them into
        // one value are the only ones satisfying the key... no wait — the
        // egd requires equal second components given equal first: only
        // valuations with v(_1) = v(_2) are in Rep.
        let t = parse_instance("F(a,_1). F(a,_2).").unwrap();
        let q = parse_query("Q() :- F(a,x), F(a,y), x != y").unwrap();
        let pool = answer_pool(&t, &q, []);
        let ans = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        // In every R ∈ Rep the two atoms collapse, so the query is never
        // true — certainly empty, and not even maybe.
        assert!(ans.is_empty());
        let maybe = maybe_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        assert!(maybe.is_empty());
    }

    #[test]
    fn rep_can_be_empty() {
        // An egd that no valuation can satisfy: F(x,y) & F(y,x) -> ... is
        // hard to make unsatisfiable by valuation alone; instead use a
        // target with a constant conflict under the key.
        let d = keyed_setting();
        let t = parse_instance("F(a,b). F(a,c).").unwrap();
        let q = parse_query("Q() :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let ans = certain_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        assert!(ans.is_none()); // Rep_D(T) = ∅
    }

    #[test]
    fn ucq_fast_path_agrees_with_oracle_on_cwa_solutions() {
        let d = keyed_setting();
        let s = parse_instance("P(a).").unwrap();
        let t = dex_cwa::core_solution(&d, &s, &dex_chase::ChaseBudget::default()).unwrap();
        let q = parse_query("Q(x) :- F(x,y)").unwrap();
        let fast = ucq_certain_answers(&q, &t);
        let pool = answer_pool(&t, &q, s.constants());
        let oracle = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(fast, oracle);
        assert_eq!(fast, Answers::from([vec![c("a")]]));
    }

    #[test]
    fn limit_is_enforced() {
        let d = free_setting();
        // 12 nulls over a pool of ~13 constants exceeds the default limit.
        let atoms: String = (0..12).map(|i| format!("G(_{i},_{i}). ")).collect();
        let t = parse_instance(&atoms).unwrap();
        let q = parse_query("Q() :- G(x,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let r = certain_answers(&d, &q, &t, &pool, &ModalLimits::default());
        assert!(matches!(r, Err(ModalError::TooManyValuations { .. })));
    }

    #[test]
    fn ground_instance_has_single_rep() {
        let d = free_setting();
        let t = parse_instance("F(a,b).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let certain = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        let maybe = maybe_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        assert_eq!(certain, maybe);
        assert_eq!(certain, Answers::from([vec![c("b")]]));
    }
}
