//! Certain and maybe answers of a query on a *single* target instance:
//! `□Q(T) = ⋂_{R ∈ Rep_D(T)} Q(R)` and `◇Q(T) = ⋃_{R ∈ Rep_D(T)} Q(R)`
//! (Section 7.1).
//!
//! `Rep_D(T)` is the set of complete instances `v(T)` for valuations
//! `v: Null(T) → Const` with `v(T) ⊨ Σ_t`. The reference implementation
//! enumerates valuations into the *standard pool* — the constants of `T`,
//! the query and the source plus `|Null(T)|` fresh constants — which is
//! sufficient up to isomorphism. Its cost is `|pool|^|Null(T)|`, matching
//! the paper's co-NP/NP data-complexity upper bounds (Proposition 7.4);
//! [`ucq_certain_answers`] is the polynomial fast path of Lemma 7.7.

use crate::eval::{drop_null_tuples, eval_query, Answers};
use dex_core::govern::{Governor, Interrupt, InterruptReason, Verdict};
use dex_core::{
    chunk_ranges, range_cost, BoundedExt, Instance, Pool, Symbol, ValuationIter, Value,
};
use dex_logic::{Query, Setting};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Limits on the valuation enumeration.
#[derive(Copy, Clone, Debug)]
pub struct ModalLimits {
    /// Maximum number of valuations to enumerate (`|pool|^|nulls|`).
    pub max_valuations: u128,
}

impl Default for ModalLimits {
    fn default() -> ModalLimits {
        ModalLimits {
            max_valuations: 5_000_000,
        }
    }
}

/// Errors from the modal-answer computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModalError {
    /// The valuation space exceeds the configured limit.
    TooManyValuations { nulls: usize, pool: usize },
}

impl fmt::Display for ModalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModalError::TooManyValuations { nulls, pool } => write!(
                f,
                "valuation space {pool}^{nulls} exceeds the configured limit \
                 (or the u64 index space)"
            ),
        }
    }
}

/// Validates a valuation-space size against both the configured limit and
/// the `u64` index domain the range-splitting drivers compute in. The
/// second check is a hard soundness requirement, not a budget: totals
/// above `u64::MAX` used to be silently clamped, so a caller who raised
/// [`ModalLimits::max_valuations`] past `2^64` got answers over a
/// silently-skipped suffix of `Rep_D(T)` — an unsound □ and incomplete ◇.
pub(crate) fn checked_total(
    total: u128,
    nulls: usize,
    pool: usize,
    limits: &ModalLimits,
) -> Result<u64, ModalError> {
    if total > limits.max_valuations || total > u128::from(u64::MAX) {
        return Err(ModalError::TooManyValuations { nulls, pool });
    }
    Ok(total as u64)
}

impl std::error::Error for ModalError {}

/// The constants a query mentions (for pool construction).
fn query_constants(q: &Query) -> BTreeSet<Symbol> {
    match q {
        Query::Cq(q) => q.constants(),
        Query::Ucq(q) => q.constants(),
        Query::Fo(q) => q.formula.constants(),
    }
}

/// The valuation pool for answering `q` on `t` given extra context
/// constants (e.g. the source's): `Const(t) ∪ extra ∪ Const(q)` plus
/// `|Null(t)|` fresh constants.
pub fn answer_pool(
    t: &Instance,
    q: &Query,
    extra: impl IntoIterator<Item = Symbol>,
) -> Vec<Symbol> {
    let mut ctx: BTreeSet<Symbol> = query_constants(q);
    ctx.extend(extra);
    dex_core::standard_pool(t, ctx)
}

/// Enumerates `Rep_D(T)` over `pool`, calling `f` on each member.
/// Returns the number of members visited.
pub fn for_each_rep(
    setting: &Setting,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    f: &mut dyn FnMut(&Instance),
) -> Result<u64, ModalError> {
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let it = ValuationIter::new(nulls.iter().copied(), pool.to_vec());
    checked_total(it.total(), nulls.len(), pool.len(), limits)?;
    let mut count = 0u64;
    for v in it {
        let ground = v.apply(t);
        if setting.satisfies_target(&ground) {
            f(&ground);
            count += 1;
        }
    }
    Ok(count)
}

/// `□Q(T)`: tuples in `Q(R)` for every `R ∈ Rep_D(T)`. Returns the
/// answers, or `None` if `Rep_D(T)` is empty (then `□Q(T)` is the set of
/// all tuples; the paper's solutions always have nonempty `Rep` since
/// valuations of solutions satisfying `Σ_t` exist, but arbitrary `T` may
/// not).
pub fn certain_answers(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
) -> Result<Option<Answers>, ModalError> {
    certain_answers_par(setting, q, t, pool, limits, &Pool::seq())
}

/// Contiguous valuation-index ranges for a worker pool. Oversplit 4×
/// relative to the *effective* thread count (requested width capped at
/// the machine's CPUs) so the work-stealing injector balances uneven
/// ranges and the □ early-exit token takes effect sooner. Splitting by
/// the requested width would be pure overhead past the cap: each extra
/// range restarts the □ intersection accumulator, so oversplitting adds
/// valuation work that no extra worker exists to absorb.
///
/// `total` is a *checked* `u64` ([`checked_total`] rejects anything
/// larger), so no clamping happens here.
fn valuation_ranges(exec: &Pool, total: u64) -> Vec<(u64, u64)> {
    chunk_ranges(total, exec.effective_threads() * 4)
}

/// Per-valuation cost estimate for [`dex_core::range_cost`] hints: each
/// valuation grounds the target and evaluates the query — around half a
/// microsecond on paper-sized instances.
pub(crate) const VALUATION_COST_NS: u64 = 500;

/// [`certain_answers`] with valuation ranges fanned out on `exec`.
/// Intersection is commutative and associative, so per-range partial
/// results merge to the same answer for every range layout and thread
/// count. Early exit: once any range's running intersection hits ∅ the
/// global answer is ∅ (⋂ only shrinks), so the worker flips a shared
/// cancel token and every other worker stops at its next valuation.
pub fn certain_answers_par(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    exec: &Pool,
) -> Result<Option<Answers>, ModalError> {
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let total = ValuationIter::new(nulls.iter().copied(), pool.to_vec()).total();
    let total = checked_total(total, nulls.len(), pool.len(), limits)?;
    let ranges = valuation_ranges(exec, total);
    let cancel = AtomicBool::new(false);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc: Option<Answers> = None;
            let vals =
                ValuationIter::from_index(nulls.iter().copied(), pool.to_vec(), u128::from(lo));
            for v in vals.bounded(hi - lo) {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                let ground = v.apply(t);
                if setting.satisfies_target(&ground) {
                    let ans = eval_query(q, &ground);
                    let next: Answers = match acc.take() {
                        None => ans,
                        Some(prev) => prev.intersection(&ans).cloned().collect(),
                    };
                    let hit_bottom = next.is_empty();
                    acc = Some(next);
                    if hit_bottom {
                        cancel.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            acc
        },
    );
    let mut acc: Option<Answers> = None;
    for p in partials.into_iter().flatten() {
        acc = Some(match acc.take() {
            None => p,
            Some(prev) => prev.intersection(&p).cloned().collect(),
        });
    }
    Ok(acc)
}

/// `◇Q(T)`: tuples in `Q(R)` for some `R ∈ Rep_D(T)`.
pub fn maybe_answers(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
) -> Result<Answers, ModalError> {
    maybe_answers_par(setting, q, t, pool, limits, &Pool::seq())
}

/// [`maybe_answers`] with valuation ranges fanned out on `exec`. Union
/// is commutative, so the merged answer is range- and thread-count
/// independent. No early exit: every representative can contribute.
pub fn maybe_answers_par(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    exec: &Pool,
) -> Result<Answers, ModalError> {
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let total = ValuationIter::new(nulls.iter().copied(), pool.to_vec()).total();
    let total = checked_total(total, nulls.len(), pool.len(), limits)?;
    let ranges = valuation_ranges(exec, total);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc = Answers::new();
            let vals =
                ValuationIter::from_index(nulls.iter().copied(), pool.to_vec(), u128::from(lo));
            for v in vals.bounded(hi - lo) {
                let ground = v.apply(t);
                if setting.satisfies_target(&ground) {
                    acc.extend(eval_query(q, &ground));
                }
            }
            acc
        },
    );
    let mut out = Answers::new();
    for p in partials {
        out.extend(p);
    }
    Ok(out)
}

/// Three-valued per-tuple answers from a governed modal evaluation: each
/// tuple's membership is [`Verdict::True`], [`Verdict::False`], or
/// [`Verdict::Unknown`] when the governor tripped before its status was
/// settled. On a complete run (no interrupt) this degenerates to the
/// classical answer set: `proven` holds the answers and every other tuple
/// is `False`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GovernedAnswers {
    /// Tuples definitely in the answer.
    pub proven: Answers,
    /// Tuples definitely *not* in the answer (refuted before the trip —
    /// e.g. dropped from a ⋂ because some fully-evaluated representative
    /// does not satisfy them).
    pub refuted: Answers,
    /// Tuples still undetermined when the governor tripped.
    pub undetermined: Answers,
    /// Verdict for every tuple outside the three sets above.
    pub default: Verdict,
    /// The interrupt that cut the run short, if any.
    pub interrupt: Option<Interrupt>,
}

impl GovernedAnswers {
    /// Wraps a completed (uninterrupted) answer set.
    pub fn complete(answers: Answers) -> GovernedAnswers {
        GovernedAnswers {
            proven: answers,
            refuted: Answers::new(),
            undetermined: Answers::new(),
            default: Verdict::False,
            interrupt: None,
        }
    }

    /// The verdict for a single tuple.
    pub fn verdict(&self, tuple: &[Value]) -> Verdict {
        if self.proven.contains(tuple) {
            Verdict::True
        } else if self.refuted.contains(tuple) {
            Verdict::False
        } else if self.undetermined.contains(tuple) {
            Verdict::Unknown(self.reason())
        } else {
            self.default
        }
    }

    /// True iff the evaluation ran to completion (no `Unknown` verdicts
    /// beyond what `default` says).
    pub fn is_complete(&self) -> bool {
        self.interrupt.is_none()
    }

    /// The *sound* (under-approximating) half of the bound pair: every
    /// tuple here is definitely in the exact answer, whatever fuel was
    /// left. On a complete run this *is* the answer. (Calautti et al.,
    /// "Querying Data Exchange Settings Beyond Positive Queries", use
    /// such sound/complete pairs for the non-positive fragment; here
    /// they fall out of the three-valued verdict partition.)
    pub fn lower_bound(&self) -> &Answers {
        &self.proven
    }

    /// The *complete* (over-approximating) half of the bound pair: the
    /// exact answer is contained in the returned set. `None` when the
    /// run was cut short with a non-`False` default — then no finite
    /// over-approximation is known (an unexplored representative could
    /// still produce any tuple). On a complete run the bound is tight:
    /// `upper == lower == proven`.
    pub fn upper_bound(&self) -> Option<Answers> {
        match self.default {
            Verdict::False => Some(self.proven.union(&self.undetermined).cloned().collect()),
            _ => None,
        }
    }

    /// True iff re-running with a larger budget can shrink the
    /// `lower_bound()`/`upper_bound()` gap: the run was interrupted, so
    /// some verdicts are still `Unknown`. Complete runs have nothing
    /// left to refine.
    pub fn is_refinable(&self) -> bool {
        self.interrupt.is_some()
    }

    fn reason(&self) -> InterruptReason {
        self.interrupt
            .map(|i| i.reason)
            .unwrap_or(InterruptReason::Fuel)
    }

    /// Internal consistency invariants; the governed test sweep asserts
    /// this on every modal evaluation outcome.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.proven {
            if self.refuted.contains(t) || self.undetermined.contains(t) {
                return Err(format!("tuple {t:?} has more than one verdict"));
            }
        }
        for t in &self.refuted {
            if self.undetermined.contains(t) {
                return Err(format!("tuple {t:?} is both refuted and undetermined"));
            }
        }
        if self.interrupt.is_none() {
            // A complete run settles everything: no tuple is left
            // undetermined and absent tuples are definitely out.
            if !self.undetermined.is_empty() {
                return Err(format!(
                    "complete run left {} tuples undetermined",
                    self.undetermined.len()
                ));
            }
            if self.default != Verdict::False {
                return Err(format!(
                    "complete run has non-False default {:?}",
                    self.default
                ));
            }
        }
        Ok(())
    }

    /// The verdict sets as JSON; tuples render via `Value`'s display form.
    pub fn to_json(&self) -> dex_obs::JsonValue {
        use dex_obs::JsonValue;
        let set = |answers: &Answers| {
            JsonValue::Arr(
                answers
                    .iter()
                    .map(|t| {
                        JsonValue::Arr(t.iter().map(|v| JsonValue::str(v.to_string())).collect())
                    })
                    .collect(),
            )
        };
        let default = match self.default {
            Verdict::True => "true".to_string(),
            Verdict::False => "false".to_string(),
            Verdict::Unknown(r) => format!("unknown:{}", r.tag()),
        };
        JsonValue::obj()
            .with("proven", set(&self.proven))
            .with("refuted", set(&self.refuted))
            .with("undetermined", set(&self.undetermined))
            .with("default", JsonValue::str(default))
            .with("complete", JsonValue::Bool(self.is_complete()))
            .with(
                "interrupt",
                self.interrupt
                    .as_ref()
                    .map_or(JsonValue::Null, Interrupt::to_json),
            )
    }
}

/// [`certain_answers`] under a [`Governor`], ticked once per enumerated
/// valuation. When the governor trips: tuples already dropped from the
/// running intersection are `False` (some fully-evaluated representative
/// refutes them), the surviving candidates are `Unknown`, and everything
/// else is `False` if at least one representative was evaluated (it
/// already failed that ⋂-factor) or `Unknown` otherwise. Returns
/// `Ok(None)` only on a *complete* run finding `Rep_D(T)` empty.
pub fn certain_answers_governed(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    gov: &Governor,
) -> Result<Option<GovernedAnswers>, ModalError> {
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let it = ValuationIter::new(nulls.iter().copied(), pool.to_vec());
    checked_total(it.total(), nulls.len(), pool.len(), limits)?;
    let mut acc: Option<Answers> = None;
    let mut refuted = Answers::new();
    for v in it {
        if let Err(i) = gov.check() {
            return Ok(Some(match acc {
                // At least one representative fully evaluated: survivors
                // unknown, everything else refuted by that factor.
                Some(survivors) => GovernedAnswers {
                    proven: Answers::new(),
                    refuted,
                    undetermined: survivors,
                    default: Verdict::False,
                    interrupt: Some(i),
                },
                // Interrupted before the first representative: nothing
                // is known about any tuple.
                None => GovernedAnswers {
                    proven: Answers::new(),
                    refuted: Answers::new(),
                    undetermined: Answers::new(),
                    default: Verdict::Unknown(i.reason),
                    interrupt: Some(i),
                },
            }));
        }
        let ground = v.apply(t);
        if setting.satisfies_target(&ground) {
            let ans = eval_query(q, &ground);
            acc = Some(match acc.take() {
                None => ans,
                Some(prev) => {
                    let kept: Answers = prev.intersection(&ans).cloned().collect();
                    refuted.extend(prev.difference(&kept).cloned());
                    kept
                }
            });
        }
    }
    Ok(acc.map(GovernedAnswers::complete))
}

/// [`maybe_answers`] under a [`Governor`], ticked once per enumerated
/// valuation. When the governor trips, tuples found so far are `True` and
/// every other tuple is `Unknown` (an unexplored representative might
/// still produce it).
pub fn maybe_answers_governed(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    gov: &Governor,
) -> Result<GovernedAnswers, ModalError> {
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let it = ValuationIter::new(nulls.iter().copied(), pool.to_vec());
    checked_total(it.total(), nulls.len(), pool.len(), limits)?;
    let mut acc = Answers::new();
    for v in it {
        if let Err(i) = gov.check() {
            return Ok(GovernedAnswers {
                proven: acc,
                refuted: Answers::new(),
                undetermined: Answers::new(),
                default: Verdict::Unknown(i.reason),
                interrupt: Some(i),
            });
        }
        let ground = v.apply(t);
        if setting.satisfies_target(&ground) {
            acc.extend(eval_query(q, &ground));
        }
    }
    Ok(GovernedAnswers::complete(acc))
}

/// [`certain_answers_governed`] with valuation ranges fanned out on
/// `exec`; the one `gov` budget is shared by every worker through its
/// relaxed atomics. At one thread this *is* the sequential governed
/// evaluation (same tick positions); under parallelism the trip point
/// depends on worker interleaving, but every definite verdict handed out
/// is still sound (a tuple is only refuted by a fully-evaluated
/// representative) and the interrupt reason is merged deterministically
/// (first in submission order).
pub fn certain_answers_governed_par(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    gov: &Governor,
    exec: &Pool,
) -> Result<Option<GovernedAnswers>, ModalError> {
    if !exec.is_parallel() {
        return certain_answers_governed(setting, q, t, pool, limits, gov);
    }
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let total = ValuationIter::new(nulls.iter().copied(), pool.to_vec()).total();
    let total = checked_total(total, nulls.len(), pool.len(), limits)?;
    struct BoxPartial {
        acc: Option<Answers>,
        refuted: Answers,
        interrupt: Option<Interrupt>,
    }
    let ranges = valuation_ranges(exec, total);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc: Option<Answers> = None;
            let mut refuted = Answers::new();
            let vals =
                ValuationIter::from_index(nulls.iter().copied(), pool.to_vec(), u128::from(lo));
            for v in vals.bounded(hi - lo) {
                if let Err(i) = gov.check() {
                    return BoxPartial {
                        acc,
                        refuted,
                        interrupt: Some(i),
                    };
                }
                let ground = v.apply(t);
                if setting.satisfies_target(&ground) {
                    let ans = eval_query(q, &ground);
                    acc = Some(match acc.take() {
                        None => ans,
                        Some(prev) => {
                            let kept: Answers = prev.intersection(&ans).cloned().collect();
                            refuted.extend(prev.difference(&kept).cloned());
                            kept
                        }
                    });
                }
            }
            BoxPartial {
                acc,
                refuted,
                interrupt: None,
            }
        },
    );
    // Merge in submission order. Every chunk's `acc` is the intersection
    // of its *fully evaluated* representatives, so cross-chunk drops are
    // definite refutations even when some chunk was interrupted.
    let mut acc: Option<Answers> = None;
    let mut refuted = Answers::new();
    let mut interrupt: Option<Interrupt> = None;
    for p in partials {
        refuted.extend(p.refuted);
        if interrupt.is_none() {
            interrupt = p.interrupt;
        }
        if let Some(part) = p.acc {
            acc = Some(match acc.take() {
                None => part,
                Some(prev) => {
                    let kept: Answers = prev.intersection(&part).cloned().collect();
                    refuted.extend(prev.difference(&kept).cloned());
                    refuted.extend(part.difference(&kept).cloned());
                    kept
                }
            });
        }
    }
    Ok(match interrupt {
        None => acc.map(GovernedAnswers::complete),
        Some(i) => Some(checked_box_partial(acc, refuted, i)),
    })
}

/// Assembles the interrupted-□ verdicts: survivors of the partial
/// intersection are unknown; with at least one fully-evaluated
/// representative everything else already failed a ⋂-factor.
pub(crate) fn checked_box_partial(
    acc: Option<Answers>,
    refuted: Answers,
    i: Interrupt,
) -> GovernedAnswers {
    match acc {
        Some(survivors) => GovernedAnswers {
            proven: Answers::new(),
            refuted,
            undetermined: survivors,
            default: Verdict::False,
            interrupt: Some(i),
        },
        None => GovernedAnswers {
            proven: Answers::new(),
            refuted: Answers::new(),
            undetermined: Answers::new(),
            default: Verdict::Unknown(i.reason),
            interrupt: Some(i),
        },
    }
}

/// [`maybe_answers_governed`] with valuation ranges fanned out on
/// `exec`, sharing the one `gov` budget across workers. Sound for the
/// same reason as the sequential version: everything proven was found
/// in an explored representative, everything else stays unknown.
pub fn maybe_answers_governed_par(
    setting: &Setting,
    q: &Query,
    t: &Instance,
    pool: &[Symbol],
    limits: &ModalLimits,
    gov: &Governor,
    exec: &Pool,
) -> Result<GovernedAnswers, ModalError> {
    if !exec.is_parallel() {
        return maybe_answers_governed(setting, q, t, pool, limits, gov);
    }
    let nulls: Vec<_> = t.nulls().into_iter().collect();
    let total = ValuationIter::new(nulls.iter().copied(), pool.to_vec()).total();
    let total = checked_total(total, nulls.len(), pool.len(), limits)?;
    let ranges = valuation_ranges(exec, total);
    let partials = exec.map(
        &ranges,
        range_cost(&ranges, VALUATION_COST_NS),
        |_, &(lo, hi)| {
            let mut acc = Answers::new();
            let vals =
                ValuationIter::from_index(nulls.iter().copied(), pool.to_vec(), u128::from(lo));
            for v in vals.bounded(hi - lo) {
                if let Err(i) = gov.check() {
                    return (acc, Some(i));
                }
                let ground = v.apply(t);
                if setting.satisfies_target(&ground) {
                    acc.extend(eval_query(q, &ground));
                }
            }
            (acc, None)
        },
    );
    let mut proven = Answers::new();
    let mut interrupt: Option<Interrupt> = None;
    for (p, i) in partials {
        proven.extend(p);
        if interrupt.is_none() {
            interrupt = i;
        }
    }
    Ok(match interrupt {
        None => GovernedAnswers::complete(proven),
        Some(i) => GovernedAnswers {
            proven,
            refuted: Answers::new(),
            undetermined: Answers::new(),
            default: Verdict::Unknown(i.reason),
            interrupt: Some(i),
        },
    })
}

/// Lemma 7.7's polynomial fast path, generalized to the largest fragment
/// it soundly covers: for a UCQ `Q` whose inequalities mention only head
/// variables and constants ([`Query::is_head_safe_ucq`]; plain UCQs are
/// the special case with no inequalities) and a CWA-solution `T`,
/// `□Q(T) = Q(T)↓` (naive evaluation, then drop tuples with nulls).
///
/// Why the fragment is exactly this: on a surviving all-constant answer
/// tuple, head-safe inequalities compare fixed constants, so their truth
/// transfers unchanged along every valuation (soundness), along the
/// injective fresh valuation, and along the homomorphisms connecting
/// CWA-solutions (completeness — Lemma 7.7's argument verbatim). An
/// inequality over an *existential* variable does not transfer: a
/// valuation can collapse the two sides, which is the § 7.2 source of
/// co-NP-hardness. Only sound when `t` is a CWA-solution.
pub fn ucq_certain_answers(q: &Query, t: &Instance) -> Answers {
    debug_assert!(
        q.is_head_safe_ucq(),
        "fast path requires a UCQ with head-safe inequalities"
    );
    drop_null_tuples(&eval_query(q, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::Value;
    use dex_logic::{parse_instance, parse_query, parse_setting};

    fn c(name: &str) -> Value {
        Value::konst(name)
    }

    /// A setting with one egd so Rep filters valuations.
    fn keyed_setting() -> Setting {
        parse_setting(
            "source { P/1 }
             target { F/2, G/2 }
             st { P(x) -> exists z . F(x,z); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap()
    }

    fn free_setting() -> Setting {
        parse_setting(
            "source { P/1 }
             target { F/2, G/2 }
             st { P(x) -> exists z . F(x,z); }",
        )
        .unwrap()
    }

    #[test]
    fn certain_answers_quantify_over_all_valuations() {
        let d = free_setting();
        let t = parse_instance("F(a,_1). G(_1,b).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        // _1 can be anything: no certain F-successor value.
        let ans = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        assert!(ans.is_empty());
        // But the Boolean "a has an F-successor" is certain.
        let qb = parse_query("Q() :- F(a,x)").unwrap();
        let ans = certain_answers(&d, &qb, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn maybe_answers_union_over_valuations() {
        let d = free_setting();
        let t = parse_instance("F(a,_1).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, [Symbol::intern("b")]);
        let ans = maybe_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        // _1 ranges over the whole pool: a, b and one fresh constant.
        assert_eq!(ans.len(), pool.len());
    }

    #[test]
    fn rep_filters_by_target_dependencies() {
        let d = keyed_setting();
        // Two F-atoms sharing a key but carrying distinct nulls. The egd
        // F(x,y) ∧ F(x,z) → y = z admits exactly the valuations with
        // v(_1) = v(_2): every other valuation produces two F-rows with
        // equal first and unequal second components, so Rep keeps only
        // the collapsed instances.
        let t = parse_instance("F(a,_1). F(a,_2).").unwrap();
        let q = parse_query("Q() :- F(a,x), F(a,y), x != y").unwrap();
        let pool = answer_pool(&t, &q, []);
        let ans = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        // In every R ∈ Rep the two atoms collapse, so the query is never
        // true — certainly empty, and not even maybe.
        assert!(ans.is_empty());
        let maybe = maybe_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        assert!(maybe.is_empty());
    }

    #[test]
    fn rep_can_be_empty() {
        // An egd that no valuation can satisfy: F(x,y) & F(y,x) -> ... is
        // hard to make unsatisfiable by valuation alone; instead use a
        // target with a constant conflict under the key.
        let d = keyed_setting();
        let t = parse_instance("F(a,b). F(a,c).").unwrap();
        let q = parse_query("Q() :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let ans = certain_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        assert!(ans.is_none()); // Rep_D(T) = ∅
    }

    #[test]
    fn ucq_fast_path_agrees_with_oracle_on_cwa_solutions() {
        let d = keyed_setting();
        let s = parse_instance("P(a).").unwrap();
        let t = dex_cwa::core_solution(&d, &s, &dex_chase::ChaseBudget::default()).unwrap();
        let q = parse_query("Q(x) :- F(x,y)").unwrap();
        let fast = ucq_certain_answers(&q, &t);
        let pool = answer_pool(&t, &q, s.constants());
        let oracle = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(fast, oracle);
        assert_eq!(fast, Answers::from([vec![c("a")]]));
    }

    #[test]
    fn limit_is_enforced() {
        let d = free_setting();
        // 12 nulls over a pool of ~13 constants exceeds the default limit.
        let atoms: String = (0..12).map(|i| format!("G(_{i},_{i}). ")).collect();
        let t = parse_instance(&atoms).unwrap();
        let q = parse_query("Q() :- G(x,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let r = certain_answers(&d, &q, &t, &pool, &ModalLimits::default());
        assert!(matches!(r, Err(ModalError::TooManyValuations { .. })));
    }

    #[test]
    fn raised_limit_cannot_silently_truncate_past_u64() {
        // Regression: `valuation_ranges` used to clamp the u128 valuation
        // total to u64::MAX, so with the limit raised past 2^64 the range
        // layout silently dropped every valuation above the clamp — the
        // suffix of Rep_D(T) was never visited (unsound □, incomplete ◇).
        // Now any space that cannot be indexed in u64 is a hard error on
        // every oracle entry point, governed or not, at any thread count.
        let d = free_setting();
        // 40 nulls over a pool of ≥41 constants: 41^40 ≈ 3.2·10^64 > 2^64.
        let atoms: String = (0..40).map(|i| format!("G(_{i},_{i}). ")).collect();
        let t = parse_instance(&atoms).unwrap();
        let q = parse_query("Q() :- G(x,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let total = ValuationIter::new(t.nulls().into_iter(), pool.clone()).total();
        assert!(
            total > u128::from(u64::MAX),
            "test instance must overflow the u64 index space (got {total})"
        );
        let lim = ModalLimits {
            max_valuations: u128::MAX,
        };
        let gov = Governor::unlimited();
        let exec = Pool::new(2).with_threshold_ns(0);
        assert!(matches!(
            certain_answers_par(&d, &q, &t, &pool, &lim, &exec),
            Err(ModalError::TooManyValuations { .. })
        ));
        assert!(matches!(
            maybe_answers_par(&d, &q, &t, &pool, &lim, &exec),
            Err(ModalError::TooManyValuations { .. })
        ));
        assert!(matches!(
            certain_answers_governed_par(&d, &q, &t, &pool, &lim, &gov, &exec),
            Err(ModalError::TooManyValuations { .. })
        ));
        assert!(matches!(
            maybe_answers_governed_par(&d, &q, &t, &pool, &lim, &gov, &exec),
            Err(ModalError::TooManyValuations { .. })
        ));
        assert!(matches!(
            certain_answers_governed(&d, &q, &t, &pool, &lim, &gov),
            Err(ModalError::TooManyValuations { .. })
        ));
        assert!(matches!(
            for_each_rep(&d, &t, &pool, &lim, &mut |_| {}),
            Err(ModalError::TooManyValuations { .. })
        ));
    }

    #[test]
    fn governed_modal_matches_ungoverned_when_unlimited() {
        let d = keyed_setting();
        let t = parse_instance("F(a,_1). F(a,_2).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let lim = ModalLimits::default();
        let gov = Governor::unlimited();
        let certain = certain_answers_governed(&d, &q, &t, &pool, &lim, &gov)
            .unwrap()
            .unwrap();
        assert!(certain.is_complete());
        assert_eq!(
            certain.proven,
            certain_answers(&d, &q, &t, &pool, &lim).unwrap().unwrap()
        );
        let gov = Governor::unlimited();
        let maybe = maybe_answers_governed(&d, &q, &t, &pool, &lim, &gov).unwrap();
        assert!(maybe.is_complete());
        assert_eq!(
            maybe.proven,
            maybe_answers(&d, &q, &t, &pool, &lim).unwrap()
        );
    }

    #[test]
    fn interrupted_box_keeps_survivors_unknown() {
        let d = free_setting();
        // Boolean query true in every rep: after one rep the empty tuple
        // survives; fuel 2 trips before the second rep, leaving it
        // unknown rather than (wrongly) certain.
        let t = parse_instance("F(a,_1).").unwrap();
        let q = parse_query("Q() :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        assert!(pool.len() >= 2);
        let gov = Governor::unlimited().with_fuel(2);
        let g = certain_answers_governed(&d, &q, &t, &pool, &ModalLimits::default(), &gov)
            .unwrap()
            .unwrap();
        assert!(!g.is_complete());
        assert!(g.proven.is_empty());
        assert_eq!(g.undetermined, Answers::from([Vec::new()]));
        assert!(g.verdict(&[]).is_unknown());
    }

    #[test]
    fn interrupted_box_marks_dropped_tuples_false() {
        let d = free_setting();
        // Non-Boolean query: each rep answers with its own valuation of
        // _1, so after two reps the first rep's tuple is refuted — a
        // *definite* False that survives the interrupt at rep three.
        let t = parse_instance("F(a,_1).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, [Symbol::intern("b"), Symbol::intern("c")]);
        assert!(pool.len() >= 3);
        // Fuel 3: the first two reps are evaluated (ticks 1 and 2), the
        // trip lands on the check before rep three.
        let gov = Governor::unlimited().with_fuel(3);
        let g = certain_answers_governed(&d, &q, &t, &pool, &ModalLimits::default(), &gov)
            .unwrap()
            .unwrap();
        assert!(!g.is_complete());
        assert_eq!(g.refuted.len(), 1);
        let refuted = g.refuted.iter().next().unwrap().clone();
        assert_eq!(g.verdict(&refuted), Verdict::False);
        // Unseen tuples already failed a fully-evaluated rep: False.
        assert_eq!(g.verdict(&[Value::konst("zzz")]), Verdict::False);
    }

    #[test]
    fn interrupted_diamond_keeps_found_true_and_rest_unknown() {
        let d = free_setting();
        let t = parse_instance("F(a,_1).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, [Symbol::intern("b")]);
        // Fuel 2: exactly one rep is evaluated before the trip.
        let gov = Governor::unlimited().with_fuel(2);
        let g = maybe_answers_governed(&d, &q, &t, &pool, &ModalLimits::default(), &gov).unwrap();
        assert!(!g.is_complete());
        assert_eq!(g.proven.len(), 1, "one rep explored before the trip");
        let found = g.proven.iter().next().unwrap().clone();
        assert_eq!(g.verdict(&found), Verdict::True);
        // Any other tuple might appear in an unexplored rep.
        assert!(g.verdict(&[Value::konst("zzz")]).is_unknown());
    }

    /// □/◇ over chunked valuation ranges agree with the sequential
    /// reference at every thread count, including the early-exit path
    /// (□ hitting an empty intersection).
    #[test]
    fn parallel_modal_answers_match_sequential() {
        let keyed = keyed_setting();
        let free = free_setting();
        let cases = [
            (&keyed, "F(a,_1). F(a,_2).", "Q(x) :- F(a,x)"),
            (&keyed, "F(a,_1). F(a,_2).", "Q() :- F(a,x), F(a,y), x != y"),
            (&free, "F(a,_1). G(_1,_2).", "Q(x) :- F(a,x)"),
            // Empty certain set exercises the cancel-token early exit.
            (&free, "F(a,_1). F(b,_2).", "Q(x) :- F(x,y), F(x,z), y != z"),
        ];
        let lim = ModalLimits::default();
        for (d, inst, query) in cases {
            let t = parse_instance(inst).unwrap();
            let q = parse_query(query).unwrap();
            let pool = answer_pool(&t, &q, [Symbol::intern("b")]);
            let certain_seq = certain_answers(d, &q, &t, &pool, &lim).unwrap();
            let maybe_seq = maybe_answers(d, &q, &t, &pool, &lim).unwrap();
            for threads in [2usize, 4, 8] {
                let exec = Pool::new(threads);
                let certain = certain_answers_par(d, &q, &t, &pool, &lim, &exec).unwrap();
                assert_eq!(certain, certain_seq, "□ {query} at {threads} threads");
                let maybe = maybe_answers_par(d, &q, &t, &pool, &lim, &exec).unwrap();
                assert_eq!(maybe, maybe_seq, "◇ {query} at {threads} threads");
            }
        }
    }

    /// Governed parallel □/◇ with an unlimited governor are complete and
    /// equal to the ungoverned answers; with a tripping governor every
    /// definite verdict stays sound and the interrupt reason matches.
    #[test]
    fn governed_parallel_modal_is_sound_and_complete_when_unlimited() {
        let d = keyed_setting();
        let t = parse_instance("F(a,_1). F(a,_2).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let lim = ModalLimits::default();
        let truth_certain = certain_answers(&d, &q, &t, &pool, &lim).unwrap().unwrap();
        let truth_maybe = maybe_answers(&d, &q, &t, &pool, &lim).unwrap();
        for threads in [1usize, 2, 8] {
            let exec = Pool::new(threads);
            let gov = Governor::unlimited();
            let g = certain_answers_governed_par(&d, &q, &t, &pool, &lim, &gov, &exec)
                .unwrap()
                .unwrap();
            g.validate().unwrap();
            assert!(g.is_complete());
            assert_eq!(g.proven, truth_certain);
            let gov = Governor::unlimited();
            let g = maybe_answers_governed_par(&d, &q, &t, &pool, &lim, &gov, &exec).unwrap();
            g.validate().unwrap();
            assert!(g.is_complete());
            assert_eq!(g.proven, truth_maybe);
            // A tripping budget: no bogus definite verdicts, same reason.
            for fuel in [1u64, 2, 5, 13] {
                let gov = Governor::unlimited().with_fuel(fuel);
                let g = certain_answers_governed_par(&d, &q, &t, &pool, &lim, &gov, &exec)
                    .unwrap()
                    .unwrap();
                g.validate().unwrap();
                for tuple in &g.proven {
                    assert!(truth_certain.contains(tuple));
                }
                for tuple in &g.refuted {
                    assert!(!truth_certain.contains(tuple), "bogus refute {tuple:?}");
                }
                if let Some(i) = g.interrupt {
                    assert_eq!(i.reason, InterruptReason::Fuel);
                }
                let gov = Governor::unlimited().with_fuel(fuel);
                let g = maybe_answers_governed_par(&d, &q, &t, &pool, &lim, &gov, &exec).unwrap();
                g.validate().unwrap();
                for tuple in &g.proven {
                    assert!(truth_maybe.contains(tuple));
                }
            }
        }
    }

    #[test]
    fn ground_instance_has_single_rep() {
        let d = free_setting();
        let t = parse_instance("F(a,b).").unwrap();
        let q = parse_query("Q(x) :- F(a,x)").unwrap();
        let pool = answer_pool(&t, &q, []);
        let certain = certain_answers(&d, &q, &t, &pool, &ModalLimits::default())
            .unwrap()
            .unwrap();
        let maybe = maybe_answers(&d, &q, &t, &pool, &ModalLimits::default()).unwrap();
        assert_eq!(certain, maybe);
        assert_eq!(certain, Answers::from([vec![c("b")]]));
    }
}
