//! A unification-based decision procedure for maybe answers on a single
//! instance: `◇Q(T)` membership without enumerating valuations.
//!
//! For a CQ (with inequalities) `Q` and an instance `T` whose `Rep(T)` is
//! *all* valuations (i.e. the setting has no target dependencies — for
//! settings with egds or target tgds valuations are filtered and the
//! oracle in [`crate::modal`] must be used), a tuple `ū` is in `◇Q(T)`
//! iff some match of `Q`'s body onto atoms of `T` exists where equalities
//! may be *repaired by a valuation*: a null of `T` may be unified with a
//! constant or with another null, as long as no two distinct constants
//! are forced together, the head lands on `ū`, and every inequality ends
//! on two terms that a valuation can still keep apart (different
//! constants, or at least one null class not pinned to the other side's
//! value).
//!
//! This is exactly the NP guess of Proposition 7.4 made deterministic by
//! backtracking over a union-find of `T`'s nulls.

use dex_core::{Instance, NullId, Value};
use dex_logic::{ConjunctiveQuery, Term, Var};
use std::collections::BTreeMap;

/// A backtrackable union-find over the nulls of `T`, where each class may
/// carry at most one constant.
struct Unifier {
    parent: BTreeMap<NullId, NullId>,
    pinned: BTreeMap<NullId, Value>, // root → constant
    trail: Vec<TrailEntry>,
}

enum TrailEntry {
    Union { child_root: NullId },
    Pin { root: NullId },
}

/// The resolved form of a value under the unifier: either a pinned
/// constant or the class representative null.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Resolved {
    Const(Value),
    Class(NullId),
}

impl Unifier {
    fn new() -> Unifier {
        Unifier {
            parent: BTreeMap::new(),
            pinned: BTreeMap::new(),
            trail: Vec::new(),
        }
    }

    fn find(&self, mut n: NullId) -> NullId {
        while let Some(&p) = self.parent.get(&n) {
            if p == n {
                break;
            }
            n = p;
        }
        n
    }

    fn resolve(&self, v: Value) -> Resolved {
        match v {
            Value::Const(_) => Resolved::Const(v),
            Value::Null(n) => {
                let root = self.find(n);
                match self.pinned.get(&root) {
                    Some(&c) => Resolved::Const(c),
                    None => Resolved::Class(root),
                }
            }
        }
    }

    /// Marks the current state; [`Unifier::rollback`] undoes to it.
    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("len checked") {
                TrailEntry::Union { child_root } => {
                    self.parent.remove(&child_root);
                }
                TrailEntry::Pin { root } => {
                    self.pinned.remove(&root);
                }
            }
        }
    }

    /// Attempts to make `a` and `b` equal under some valuation. Fails
    /// only if two distinct constants are forced together.
    fn unify(&mut self, a: Value, b: Value) -> bool {
        match (self.resolve(a), self.resolve(b)) {
            (Resolved::Const(x), Resolved::Const(y)) => x == y,
            (Resolved::Class(r), Resolved::Const(c)) | (Resolved::Const(c), Resolved::Class(r)) => {
                self.pinned.insert(r, c);
                self.trail.push(TrailEntry::Pin { root: r });
                true
            }
            (Resolved::Class(r1), Resolved::Class(r2)) => {
                if r1 != r2 {
                    // Keep the smaller root; no pins exist on either.
                    let (child, new_root) = if r1 < r2 { (r2, r1) } else { (r1, r2) };
                    self.parent.insert(child, new_root);
                    self.trail.push(TrailEntry::Union { child_root: child });
                }
                true
            }
        }
    }

    /// Can a valuation keep `a` and `b` distinct, given the current
    /// unifications? Yes unless both resolve to the same constant or to
    /// the same class.
    fn separable(&self, a: Value, b: Value) -> bool {
        match (self.resolve(a), self.resolve(b)) {
            (Resolved::Const(x), Resolved::Const(y)) => x != y,
            (Resolved::Class(r1), Resolved::Class(r2)) => r1 != r2,
            // A free class can always be valuated away from any constant.
            _ => true,
        }
    }
}

/// Decides whether the ground tuple `tuple` is a maybe answer of the CQ
/// `q` on `t`, i.e. whether `tuple ∈ Q(v(T))` for *some* valuation `v` —
/// assuming `Rep(T)` is unconstrained (no target dependencies).
pub fn cq_is_maybe_answer(q: &ConjunctiveQuery, t: &Instance, tuple: &[Value]) -> bool {
    if tuple.len() != q.arity() || tuple.iter().any(Value::is_null) {
        return false;
    }
    let mut binding: BTreeMap<Var, Value> = BTreeMap::new();
    for (&var, &val) in q.head_vars.iter().zip(tuple) {
        match binding.insert(var, val) {
            Some(prev) if prev != val => return false,
            _ => {}
        }
    }
    let mut uf = Unifier::new();
    search(q, t, 0, &mut binding, &mut uf)
}

/// Decides whether the Boolean CQ `q` is possibly true on `t` (some
/// valuation satisfies it).
pub fn cq_maybe_holds(q: &ConjunctiveQuery, t: &Instance) -> bool {
    debug_assert_eq!(
        q.arity(),
        0,
        "use cq_is_maybe_answer for non-Boolean queries"
    );
    cq_is_maybe_answer(q, t, &[])
}

fn term_value(term: Term, binding: &BTreeMap<Var, Value>) -> Option<Value> {
    match term {
        Term::Const(c) => Some(Value::Const(c)),
        Term::Var(v) => binding.get(&v).copied(),
    }
}

fn search(
    q: &ConjunctiveQuery,
    t: &Instance,
    atom_idx: usize,
    binding: &mut BTreeMap<Var, Value>,
    uf: &mut Unifier,
) -> bool {
    if atom_idx == q.atoms.len() {
        // All atoms matched; check the inequalities are separable and the
        // head variables resolve to the requested constants.
        for (s, tt) in &q.inequalities {
            let (Some(a), Some(b)) = (term_value(*s, binding), term_value(*tt, binding)) else {
                return false; // safety guarantees this cannot happen
            };
            if !uf.separable(a, b) {
                return false;
            }
        }
        // Head variables are bound to the requested ground tuple up
        // front; a row value unified with them must resolve to exactly
        // that constant — enforced during unification (a pinned class or
        // equal constant). Nothing further to check.
        return true;
    }
    let atom = &q.atoms[atom_idx];
    // Try every row of the relation; unification replaces index lookup
    // because nulls of T can stand for anything.
    let rows: Vec<Vec<Value>> = t.rows_of(atom.rel).map(|r| r.to_vec()).collect();
    for row in rows {
        if row.len() != atom.args.len() {
            continue;
        }
        let mark = uf.mark();
        let mut newly_bound: Vec<Var> = Vec::new();
        let mut ok = true;
        for (&term, &row_val) in atom.args.iter().zip(&row) {
            let pattern_val = match term {
                Term::Const(c) => Value::Const(c),
                Term::Var(v) => match binding.get(&v) {
                    Some(&bound) => bound,
                    None => {
                        binding.insert(v, row_val);
                        newly_bound.push(v);
                        continue;
                    }
                },
            };
            if !uf.unify(pattern_val, row_val) {
                ok = false;
                break;
            }
        }
        if ok && search(q, t, atom_idx + 1, binding, uf) {
            return true;
        }
        uf.rollback(mark);
        for v in newly_bound {
            binding.remove(&v);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_instance, parse_query, Query};

    fn cq(text: &str) -> ConjunctiveQuery {
        match parse_query(text).unwrap() {
            Query::Cq(q) => q,
            _ => panic!("expected CQ"),
        }
    }

    fn c(name: &str) -> Value {
        Value::konst(name)
    }

    #[test]
    fn ground_match_is_maybe() {
        let t = parse_instance("E(a,b).").unwrap();
        assert!(cq_is_maybe_answer(&cq("Q(x) :- E(x,y)"), &t, &[c("a")]));
        assert!(!cq_is_maybe_answer(&cq("Q(x) :- E(x,y)"), &t, &[c("b")]));
    }

    #[test]
    fn null_can_stand_for_any_constant() {
        let t = parse_instance("E(a,_1).").unwrap();
        // _1 can be valuated to anything, including brand-new constants.
        for target in ["a", "b", "zzz"] {
            assert!(cq_is_maybe_answer(&cq("Q(y) :- E(a,y)"), &t, &[c(target)]));
        }
    }

    #[test]
    fn shared_null_must_be_consistent() {
        // E(_1,_1): Q(x,y) :- E(x,y) with x ≠ y impossible; equal fine.
        let t = parse_instance("E(_1,_1).").unwrap();
        assert!(cq_is_maybe_answer(
            &cq("Q(x,y) :- E(x,y)"),
            &t,
            &[c("a"), c("a")]
        ));
        assert!(!cq_is_maybe_answer(
            &cq("Q(x,y) :- E(x,y)"),
            &t,
            &[c("a"), c("b")]
        ));
    }

    #[test]
    fn join_through_nulls() {
        // E(a,_1), F(_2,b): joining y requires unifying _1 with _2 — fine.
        let t = parse_instance("E(a,_1). F(_2,b).").unwrap();
        let q = cq("Q() :- E(x,y), F(y,z)");
        assert!(cq_maybe_holds(&q, &t));
    }

    #[test]
    fn two_constants_cannot_unify() {
        let t = parse_instance("E(a,b). F(c,d).").unwrap();
        // Join needs b = c: both constants, impossible.
        let q = cq("Q() :- E(x,y), F(y,z)");
        assert!(!cq_maybe_holds(&q, &t));
    }

    #[test]
    fn inequality_separability() {
        // E(_1,_2): x ≠ y is possible (valuate apart).
        let t = parse_instance("E(_1,_2).").unwrap();
        assert!(cq_maybe_holds(&cq("Q() :- E(x,y), x != y"), &t));
        // E(_1,_1): x ≠ y impossible.
        let t2 = parse_instance("E(_1,_1).").unwrap();
        assert!(!cq_maybe_holds(&cq("Q() :- E(x,y), x != y"), &t2));
    }

    #[test]
    fn inequality_with_pinned_class() {
        // E(a,_1) with head y = a: _1 pinned to a, so y != x fails.
        let t = parse_instance("E(a,_1).").unwrap();
        let q = cq("Q(y) :- E(x,y), x != y");
        assert!(!cq_is_maybe_answer(&q, &t, &[c("a")]));
        assert!(cq_is_maybe_answer(&q, &t, &[c("b")]));
    }

    #[test]
    fn agrees_with_the_valuation_oracle() {
        // Cross-check on a small instance against modal::maybe_answers.
        let setting = dex_logic::parse_setting(
            "source { P/1 }
             target { E/2, F/2 }
             st { P(x) -> exists z . E(x,z); }",
        )
        .unwrap();
        let t = parse_instance("E(a,_1). E(_1,b). F(_1,_2).").unwrap();
        let queries = [
            "Q(x,y) :- E(x,y)",
            "Q(x) :- E(x,y), F(y,z)",
            "Q(x,z) :- E(x,y), E(y,z)",
            "Q(x) :- E(x,y), x != y",
        ];
        for qt in queries {
            let q = parse_query(qt).unwrap();
            let Query::Cq(cq_ast) = &q else { panic!() };
            let pool = crate::modal::answer_pool(&t, &q, []);
            let oracle =
                crate::modal::maybe_answers(&setting, &q, &t, &pool, &Default::default()).unwrap();
            // Every oracle answer must be confirmed by the fast path, and
            // pool-tuples rejected by the fast path must be absent.
            for tuple in &oracle {
                assert!(
                    cq_is_maybe_answer(cq_ast, &t, tuple),
                    "query {qt}, tuple {tuple:?} in oracle but rejected"
                );
            }
            // Exhaustive cross-check over all pool tuples.
            let arity = q.arity();
            let mut idx = vec![0usize; arity];
            loop {
                let tuple: Vec<Value> = idx.iter().map(|&i| Value::Const(pool[i])).collect();
                assert_eq!(
                    cq_is_maybe_answer(cq_ast, &t, &tuple),
                    oracle.contains(&tuple),
                    "query {qt}, tuple {tuple:?}"
                );
                let mut k = 0;
                loop {
                    if k == arity {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < pool.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == arity {
                    break;
                }
            }
        }
    }

    #[test]
    fn null_tuples_are_never_answers() {
        let t = parse_instance("E(a,_1).").unwrap();
        assert!(!cq_is_maybe_answer(
            &cq("Q(y) :- E(x,y)"),
            &t,
            &[Value::null(1)]
        ));
    }

    #[test]
    fn repeated_head_variable() {
        let t = parse_instance("E(_1,_2).").unwrap();
        let q = cq("Q(x,x) :- E(x,x)");
        assert!(cq_is_maybe_answer(&q, &t, &[c("a"), c("a")]));
        assert!(!cq_is_maybe_answer(&q, &t, &[c("a"), c("b")]));
    }
}
