//! Exhaustive enumeration of CWA-(pre)solutions up to isomorphism, by
//! systematic exploration of the α-choices (Section 5, Example 5.3).
//!
//! Every CWA-presolution is the result of a successful α-chase; under the
//! deterministic chase strategy the run is a function of the sequence of
//! values α returns for the justifications *in the order they are first
//! queried*. Each query's meaningful choices, up to renaming of nulls,
//! are: a fresh null, any value of the current instance, or a constant
//! from the dependency vocabulary — choosing a null minted later is
//! isomorphic to the later justification reusing this one's fresh null.
//! The enumerator therefore DFS-explores *choice scripts*: it replays a
//! script through the real α-chase, and whenever the chase asks for a
//! choice beyond the script's end it forks one child script per menu
//! entry. By Lemma 4.5 the result per α is strategy-independent, so
//! enumerating scripts enumerates all CWA-presolutions (up to iso) within
//! the limits.
//!
//! Replays are independent — each is a pure function of its script — so
//! the enumerator fans waves of pending scripts out over a [`Pool`]
//! ([`EnumOpts`]). The wave size is a fixed constant and outcomes are
//! consumed strictly in submission order, so results, stats and traces
//! are byte-identical for every thread count.

use dex_chase::{
    alpha_chase, AlphaOutcome, AlphaSource, ChaseBudget, ChaseEngine, ChaseError, ChaseStats,
    Justification,
};
use dex_core::govern::Interrupt;
use dex_core::{has_homomorphism, Clock, Instance, IsoDeduper, NullGen, Pool, Symbol, Value};
use dex_logic::Setting;
use dex_obs::{RingRecorder, Tracer};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Limits for the enumeration.
#[derive(Clone, Debug)]
pub struct EnumLimits {
    /// Stop after this many distinct (up-to-iso) presolutions.
    pub max_results: usize,
    /// Stop after exploring this many scripts.
    pub max_scripts: usize,
    /// Budget per individual α-chase replay.
    pub chase_budget: ChaseBudget,
    /// Restrict choice menus to fresh/existing *nulls* (complete for
    /// settings without egds, where no constant can be forced into an
    /// existential position of a universal solution; much faster).
    pub nulls_only: bool,
}

impl Default for EnumLimits {
    fn default() -> EnumLimits {
        EnumLimits {
            max_results: 10_000,
            max_scripts: 1_000_000,
            chase_budget: ChaseBudget::probe(),
            nulls_only: false,
        }
    }
}

/// Execution options for the enumerator, kept separate from the logical
/// [`EnumLimits`]: which worker pool script replays run on, and where
/// their trace events go. The default is sequential and untraced, so the
/// plain entry points behave exactly as before.
#[derive(Clone, Debug)]
pub struct EnumOpts {
    /// Pool that α-chase replays are fanned out on. Any thread count
    /// produces byte-identical results; see [`WAVE`].
    pub pool: Pool,
    /// Sink for chase trace events. When enabled, each replay records
    /// into a private ring re-emitted after the join in submission
    /// order, so the stream is deterministic under parallelism.
    pub tracer: Tracer,
    /// Clock stamping the replayed chases' trace events. Substituting
    /// a mock makes the reassembled stream byte-identical across
    /// reruns and thread counts (real timestamps never could be).
    pub clock: Clock,
}

impl Default for EnumOpts {
    fn default() -> EnumOpts {
        EnumOpts {
            pool: Pool::seq(),
            tracer: Tracer::off(),
            clock: Clock::real(),
        }
    }
}

impl EnumOpts {
    /// Sequential, untraced (the default).
    pub fn seq() -> EnumOpts {
        EnumOpts::default()
    }

    /// Pool sized from `DEX_THREADS` / available parallelism, untraced.
    pub fn from_env() -> EnumOpts {
        EnumOpts {
            pool: Pool::from_env(),
            ..EnumOpts::default()
        }
    }

    pub fn with_pool(mut self, pool: Pool) -> EnumOpts {
        self.pool = pool;
        self
    }

    pub fn with_tracer(mut self, tracer: Tracer) -> EnumOpts {
        self.tracer = tracer;
        self
    }

    pub fn with_clock(mut self, clock: Clock) -> EnumOpts {
        self.clock = clock;
        self
    }
}

/// Scripts replayed per fan-out wave. Deliberately a constant — never
/// derived from the pool's thread count — so the set of scripts explored
/// (and therefore results and stats) is identical for every
/// `DEX_THREADS`, and big enough to keep 8 workers busy per wave.
const WAVE: usize = 64;

/// Events retained per replay's private trace ring. Oversized replays
/// drop their oldest events exactly as a shared ring of the same
/// capacity would.
const REPLAY_RING_CAPACITY: usize = 4096;

/// An α driven by a finite choice script. Each *new* justification
/// consumes one script entry indexing into the menu
/// `[fresh, v₁, …, v_k, c₁, …]` (current domain values, then vocabulary
/// constants not in the domain). When the script is exhausted, the first
/// overrun records the menu size and falls back to fresh nulls.
struct ScriptAlpha<'a> {
    script: &'a [usize],
    pos: usize,
    memo: HashMap<Justification, Value>,
    gen: NullGen,
    pool: &'a [Symbol],
    nulls_only: bool,
    overrun_menu: Option<usize>,
}

impl ScriptAlpha<'_> {
    fn menu(&self, inst: &Instance) -> Vec<Value> {
        // Reusable values: the current active domain plus values already
        // assigned to other justifications in this run (a tgd's head atoms
        // are inserted only after *all* its existentials are assigned, so
        // intra-trigger sharing — Example 5.3's z3 = z4 — must see them).
        let mut domain: BTreeSet<Value> = inst.active_domain();
        domain.extend(self.memo.values().copied());
        let mut m: Vec<Value> = Vec::new();
        if self.nulls_only {
            m.extend(domain.iter().copied().filter(Value::is_null));
        } else {
            m.extend(domain.iter().copied());
            for &c in self.pool {
                if !domain.contains(&Value::Const(c)) {
                    m.push(Value::Const(c));
                }
            }
        }
        m
    }
}

impl AlphaSource for ScriptAlpha<'_> {
    fn value(&mut self, j: &Justification, inst: &Instance) -> Value {
        if let Some(&v) = self.memo.get(j) {
            return v;
        }
        let menu = self.menu(inst);
        let v = if self.pos < self.script.len() {
            let choice = self.script[self.pos];
            self.pos += 1;
            if choice == 0 {
                self.gen.fresh_value()
            } else {
                menu[choice - 1]
            }
        } else {
            if self.overrun_menu.is_none() {
                // Menu size + 1 for the "fresh" option at index 0.
                self.overrun_menu = Some(menu.len() + 1);
            }
            self.gen.fresh_value()
        };
        self.memo.insert(j.clone(), v);
        v
    }
}

/// Constants of the dependency vocabulary (offered as α-choices even when
/// not yet in the instance).
fn vocabulary_constants(setting: &Setting) -> Vec<Symbol> {
    let mut out: BTreeSet<Symbol> = BTreeSet::new();
    for tgd in setting.all_tgds() {
        for a in &tgd.head {
            out.extend(a.constants());
        }
        if let dex_logic::Body::Conj(atoms) = &tgd.body {
            for a in atoms {
                out.extend(a.constants());
            }
        }
    }
    for egd in &setting.egds {
        for a in &egd.body {
            out.extend(a.constants());
        }
    }
    out.into_iter().collect()
}

/// Statistics from an enumeration run.
#[derive(Clone, Debug, Default)]
pub struct EnumStats {
    pub scripts_explored: usize,
    pub chases_succeeded: usize,
    /// Replays that *definitely* yield no presolution: a failing chase
    /// (egd conflict on constants) or a provably infinite one (state
    /// cycle under the deterministic strategy).
    pub chases_failed: usize,
    /// Replays that exhausted their per-replay step/atom budget. Unlike
    /// `chases_failed`, these say nothing definite: a presolution
    /// reachable only through such a script is missing from the results.
    pub chases_unfinished: usize,
    /// Replays stopped by the budget's deadline or cancel flag.
    pub chases_interrupted: usize,
    pub truncated: bool,
    /// Set when the run was cut short by a deadline/cancel interrupt
    /// (either inside a replay or, for [`enumerate_cwa_solutions`], while
    /// computing the canonical universal solution).
    pub interrupted: Option<Interrupt>,
    /// Per-replay [`ChaseStats`] of every *successful* chase, merged via
    /// [`ChaseStats::merge`] in submission order. Counter fields are
    /// deterministic across thread counts; `*_time_ns` are wall-clock.
    pub chase: ChaseStats,
}

impl EnumStats {
    /// True iff the result list is *complete*: every CWA-presolution
    /// (up to iso) reachable within the limits was found and no replay
    /// ended indeterminately.
    pub fn is_complete(&self) -> bool {
        !self.truncated && self.chases_unfinished == 0 && self.interrupted.is_none()
    }

    /// Internal consistency invariants; the governed test sweep asserts
    /// this on every enumeration outcome.
    pub fn validate(&self) -> Result<(), String> {
        let outcomes = self.chases_succeeded
            + self.chases_failed
            + self.chases_unfinished
            + self.chases_interrupted;
        // Every script accounts for at most one outcome; the solutions
        // path can add one more for the canonical-solution chase, which
        // runs without a script of its own.
        if outcomes > self.scripts_explored + 1 {
            return Err(format!(
                "{outcomes} chase outcomes from {} scripts (max {})",
                self.scripts_explored,
                self.scripts_explored + 1
            ));
        }
        if (self.chases_interrupted > 0) != self.interrupted.is_some() {
            return Err(format!(
                "chases_interrupted = {} but interrupted = {:?}",
                self.chases_interrupted, self.interrupted
            ));
        }
        if self.interrupted.is_some() && self.is_complete() {
            return Err("interrupted run claims completeness".to_string());
        }
        self.chase
            .validate()
            .map_err(|e| format!("merged chase stats: {e}"))?;
        Ok(())
    }

    /// The counters as a flat JSON object; `interrupted` is `null` or
    /// the interrupt's own object shape.
    pub fn to_json(&self) -> dex_obs::JsonValue {
        use dex_obs::JsonValue;
        JsonValue::obj()
            .with(
                "scripts_explored",
                JsonValue::uint(self.scripts_explored as u64),
            )
            .with(
                "chases_succeeded",
                JsonValue::uint(self.chases_succeeded as u64),
            )
            .with("chases_failed", JsonValue::uint(self.chases_failed as u64))
            .with(
                "chases_unfinished",
                JsonValue::uint(self.chases_unfinished as u64),
            )
            .with(
                "chases_interrupted",
                JsonValue::uint(self.chases_interrupted as u64),
            )
            .with("truncated", JsonValue::Bool(self.truncated))
            .with("complete", JsonValue::Bool(self.is_complete()))
            .with(
                "interrupted",
                self.interrupted
                    .as_ref()
                    .map_or(JsonValue::Null, Interrupt::to_json),
            )
            .with("chase", self.chase.json_value())
    }
}

/// One replayed script's outcome as produced by a pool worker, ready to
/// be consumed by the sequential bookkeeping loop.
struct Replay {
    outcome: AlphaOutcome,
    overrun_menu: Option<usize>,
    ring: Option<Arc<RingRecorder>>,
}

/// Replays one choice script through the α-chase. Pure in `script` for
/// fixed setting/source/limits — this is what makes wave fan-out safe:
/// workers share nothing but read-only inputs. With `traced`, events go
/// to a private ring for deterministic re-emission after the join.
fn replay_script(
    setting: &Setting,
    source: &Instance,
    script: &[usize],
    pool: &[Symbol],
    fresh_base: u32,
    limits: &EnumLimits,
    traced: bool,
    clock: &Clock,
) -> Replay {
    // Fresh nulls must start above the source's values.
    let mut gen = NullGen::new();
    for _ in 0..fresh_base {
        gen.fresh();
    }
    let mut alpha = ScriptAlpha {
        script,
        pos: 0,
        memo: HashMap::new(),
        gen,
        pool,
        nulls_only: limits.nulls_only,
        overrun_menu: None,
    };
    let (outcome, ring) = if traced {
        let ring = Arc::new(RingRecorder::new(REPLAY_RING_CAPACITY));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let engine = ChaseEngine::new(setting, &limits.chase_budget)
            .with_clock(clock.clone())
            .with_tracer(tracer.clone());
        let outcome = engine.run_alpha(source, &mut alpha);
        // A terminal outcome mid-round (budget, conflict, cycle) leaks
        // the round's span guards; close them so every replayed ring is
        // a well-formed stream.
        tracer.close_open_spans(clock.now_ns());
        (outcome, Some(ring))
    } else {
        (
            alpha_chase(setting, source, &mut alpha, &limits.chase_budget),
            None,
        )
    };
    Replay {
        outcome,
        overrun_menu: alpha.overrun_menu,
        ring,
    }
}

/// Enumerates the CWA-presolutions for `source` under `setting`, up to
/// isomorphism, within `limits`. Sequential and untraced; see
/// [`enumerate_cwa_presolutions_opts`] for the pool-parametrized form.
pub fn enumerate_cwa_presolutions(
    setting: &Setting,
    source: &Instance,
    limits: &EnumLimits,
) -> (Vec<Instance>, EnumStats) {
    enumerate_cwa_presolutions_opts(setting, source, limits, &EnumOpts::default())
}

/// [`enumerate_cwa_presolutions`] with execution options: pending
/// scripts are replayed in waves on `opts.pool` and their outcomes
/// consumed strictly in submission order, so the result list, stats and
/// trace stream are byte-identical for every thread count.
pub fn enumerate_cwa_presolutions_opts(
    setting: &Setting,
    source: &Instance,
    limits: &EnumLimits,
    opts: &EnumOpts,
) -> (Vec<Instance>, EnumStats) {
    let pool = vocabulary_constants(setting);
    let fresh_base = NullGen::above(source.active_domain().iter()).peek();
    let traced = opts.tracer.enabled();
    let mut stats = EnumStats::default();
    let mut results = IsoDeduper::new();
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    'enumerate: while !stack.is_empty() {
        if stats.scripts_explored >= limits.max_scripts || results.len() >= limits.max_results {
            stats.truncated = true;
            break;
        }
        // Take a wave of scripts off the top of the stack and replay them
        // on the pool. Capping the wave by the remaining script budget
        // keeps speculative work bounded; capping by WAVE (a constant)
        // keeps the exploration order thread-count independent.
        let batch = stack
            .len()
            .min(WAVE)
            .min(limits.max_scripts - stats.scripts_explored);
        let wave: Vec<Vec<usize>> = (0..batch).map(|_| stack.pop().unwrap()).collect();
        // One span per wave wraps the replayed event stream. The
        // enumerator has no clock (determinism across thread counts is
        // the whole point), so wave spans carry timestamp 0; Option so
        // every exit path below can close it exactly once.
        let mut sp_wave = Some(opts.tracer.span("wave", 0));
        // Each wave item is a full α-chase replay — heavy enough that
        // any multi-script wave clears the pool's inline threshold.
        let replays = opts.pool.map(&wave, dex_core::Cost::Heavy, |_, script| {
            replay_script(
                setting,
                source,
                script,
                &pool,
                fresh_base,
                limits,
                traced,
                &opts.clock,
            )
        });
        // Consume outcomes strictly in submission order — this loop is
        // the sequential enumeration verbatim. Replays past a truncation
        // or interrupt point are speculative work that is discarded
        // without being counted anywhere.
        for (script, replay) in wave.iter().zip(replays) {
            if stats.scripts_explored >= limits.max_scripts || results.len() >= limits.max_results {
                stats.truncated = true;
                if let Some(sp) = sp_wave.take() {
                    sp.close(0);
                }
                break 'enumerate;
            }
            stats.scripts_explored += 1;
            if let Some(ring) = &replay.ring {
                ring.replay_into(&opts.tracer);
            }
            if let Some(menu_size) = replay.overrun_menu {
                // The script was too short: fork one child per choice.
                // Pushed in reverse so choice 0 (fresh) is explored first.
                for choice in (0..menu_size).rev() {
                    let mut child = script.clone();
                    child.push(choice);
                    stack.push(child);
                }
                continue;
            }
            match replay.outcome {
                AlphaOutcome::Success(s) => {
                    stats.chases_succeeded += 1;
                    stats.chase.merge(&s.stats);
                    // Dedup up to isomorphism online: the raw result
                    // stream repeats each class many times (different
                    // scripts, same α up to renaming of nulls).
                    results.insert(s.target);
                }
                // Both are definite negatives: a failing chase, or one
                // that provably runs forever — either way this α admits
                // no successful chase, hence no presolution
                // (Definition 4.6).
                AlphaOutcome::Failing { .. } | AlphaOutcome::CycleDetected { .. } => {
                    stats.chases_failed += 1
                }
                AlphaOutcome::BudgetExceeded { .. } => {
                    // Indeterminate: a presolution reachable only through
                    // this script may be missing from the results.
                    stats.chases_unfinished += 1;
                }
                AlphaOutcome::Interrupted(i) => {
                    // Deadline/cancel: stop the whole enumeration —
                    // every further replay would trip the same way.
                    stats.chases_interrupted += 1;
                    stats.interrupted = Some(i);
                    if let Some(sp) = sp_wave.take() {
                        sp.close(0);
                    }
                    break 'enumerate;
                }
            }
        }
        if let Some(sp) = sp_wave.take() {
            sp.close(0);
        }
    }
    (results.into_representatives(), stats)
}

/// Enumerates the CWA-*solutions* (Theorem 4.8: the universal ones among
/// the presolutions), up to isomorphism. Sequential; see
/// [`enumerate_cwa_solutions_opts`] for the pool-parametrized form.
pub fn enumerate_cwa_solutions(
    setting: &Setting,
    source: &Instance,
    limits: &EnumLimits,
) -> (Vec<Instance>, EnumStats) {
    enumerate_cwa_solutions_opts(setting, source, limits, &EnumOpts::default())
}

/// [`enumerate_cwa_solutions`] with execution options (the universality
/// filter itself fans the per-presolution checks out on the pool).
pub fn enumerate_cwa_solutions_opts(
    setting: &Setting,
    source: &Instance,
    limits: &EnumLimits,
    opts: &EnumOpts,
) -> (Vec<Instance>, EnumStats) {
    let (pres, mut stats) = enumerate_cwa_presolutions_opts(setting, source, limits, opts);
    // Theorem 4.8: filter to the universal presolutions. The canonical
    // universal solution is computed once; a presolution is universal iff
    // it is a solution mapping homomorphically into it.
    let chase_budget = ChaseBudget {
        ext: limits.chase_budget.ext.clone(),
        ..ChaseBudget::default()
    };
    let canon = match dex_chase::canonical_universal_solution(setting, source, &chase_budget) {
        Ok(canon) => canon,
        // A failing chase is definite: no solutions at all exist.
        Err(ChaseError::EgdConflict { .. }) => return (Vec::new(), stats),
        // Budget/interrupt is NOT "no CWA-solutions" — report the run as
        // cut short rather than returning a silently-empty answer.
        Err(ChaseError::BudgetExceeded { .. }) => {
            stats.chases_unfinished += 1;
            stats.truncated = true;
            return (Vec::new(), stats);
        }
        Err(ChaseError::Interrupted(i)) => {
            stats.chases_interrupted += 1;
            stats.interrupted = Some(i);
            return (Vec::new(), stats);
        }
    };
    // Each presolution's universality check is independent; fan them out
    // and keep the original order (map preserves submission order).
    // Per-presolution cost: a solution check plus a hom search into the
    // canonical solution — scales with the instance size, so the handful
    // of paper-example presolutions stay inline.
    let keep_cost =
        dex_core::Cost::EstimateNs((canon.len() as u64).saturating_mul(canon.len() as u64));
    let keep = opts.pool.map(&pres, keep_cost, |_, t| {
        setting.is_solution(source, t) && has_homomorphism(t, &canon)
    });
    let sols = pres
        .into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect();
    (sols, stats)
}

/// The subsets of `solutions` that are *not* a homomorphic image of any
/// other listed solution — the pairwise-incomparable witnesses of
/// Example 5.3.
pub fn maximal_under_image(solutions: &[Instance]) -> Vec<Instance> {
    solutions
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !solutions
                .iter()
                .enumerate()
                .any(|(j, u)| j != *i && crate::solution::is_homomorphic_image_of(t, u))
        })
        .map(|(_, t)| t.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::isomorphic;
    use dex_logic::{parse_instance, parse_setting};

    /// The setting of Example 5.3.
    fn example_5_3() -> Setting {
        parse_setting(
            "source { P/1 }
             target { E/3, F/3 }
             st {
               d1: P(x) -> exists z1,z2,z3,z4 . E(x,z1,z3) & E(x,z2,z4);
             }
             t {
               d2: E(x,x1,y) & E(x,x2,y) -> F(x,x1,x2);
             }",
        )
        .unwrap()
    }

    #[test]
    fn example_5_3_has_the_papers_t_and_t_prime() {
        let d = example_5_3();
        let s = parse_instance("P(1).").unwrap();
        let limits = EnumLimits {
            nulls_only: true,
            ..EnumLimits::default()
        };
        let (sols, stats) = enumerate_cwa_solutions(&d, &s, &limits);
        assert!(!stats.truncated);
        let t = parse_instance("E(1,_1,_3). E(1,_2,_4). F(1,_1,_1). F(1,_2,_2).").unwrap();
        let t_prime = parse_instance(
            "E(1,_1,_3). E(1,_2,_3). F(1,_1,_1). F(1,_2,_2). F(1,_1,_2). F(1,_2,_1).",
        )
        .unwrap();
        assert!(
            sols.iter().any(|x| isomorphic(x, &t)),
            "T missing: {sols:?}"
        );
        assert!(sols.iter().any(|x| isomorphic(x, &t_prime)), "T' missing");
        // Both are maximal under the image preorder — incomparable.
        let maximal = maximal_under_image(&sols);
        assert!(maximal.iter().any(|x| isomorphic(x, &t)));
        assert!(maximal.iter().any(|x| isomorphic(x, &t_prime)));
        assert!(maximal.len() >= 2, "at least 2 incomparable CWA-solutions");
    }

    /// For the Libkin fragment of Example 2.1 (no target dependencies) the
    /// enumeration finds exactly the three CWA-solutions of Section 3, up
    /// to isomorphism.
    #[test]
    fn libkin_fragment_has_exactly_three_cwa_solutions() {
        let d = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }",
        )
        .unwrap();
        let s = parse_instance("M(a,b). N(a,b). N(a,c).").unwrap();
        let (sols, stats) = enumerate_cwa_solutions(&d, &s, &EnumLimits::default());
        assert!(!stats.truncated);
        // By Definitions 4.6/4.7 + Theorem 4.8 the CWA-solutions are the
        // universal CWA-presolutions: E(a,b), plus 0-2 null E-successors
        // of a, plus 1-2 null F-successors — six up to renaming of nulls.
        // (The paper's Section 3 recap prints three of these shapes; the
        // other three differ only in keeping the two triggers' F-nulls
        // distinct, which the formal definitions clearly admit.)
        let expected = [
            "E(a,b). F(a,_1).",
            "E(a,b). E(a,_1). F(a,_2).",
            "E(a,b). E(a,_1). E(a,_2). F(a,_3).",
            "E(a,b). F(a,_1). F(a,_2).",
            "E(a,b). E(a,_1). F(a,_2). F(a,_3).",
            "E(a,b). E(a,_1). E(a,_2). F(a,_3). F(a,_4).",
        ];
        assert_eq!(sols.len(), 6, "got {sols:?}");
        for e in expected {
            let e = parse_instance(e).unwrap();
            assert!(sols.iter().any(|x| isomorphic(x, &e)), "missing {e}");
        }
    }

    /// Example 2.1 in full: T₂ is the single ⊑-maximal CWA-solution shape
    /// found, and the core T₃ is among the solutions.
    #[test]
    fn example_2_1_enumeration_contains_core_and_t2() {
        let d = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }
             t {
               d3: F(y,x) -> exists z . G(x,z);
               d4: F(x,y) & F(x,z) -> y = z;
             }",
        )
        .unwrap();
        let s = parse_instance("M(a,b). N(a,b). N(a,c).").unwrap();
        // Full menus: T3 needs d2's z1 to reuse the *constant* b so that
        // no extra E-atom is created.
        let (sols, stats) = enumerate_cwa_solutions(&d, &s, &EnumLimits::default());
        assert!(!stats.truncated);
        let t2 = parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap();
        let t3 = parse_instance("E(a,b). F(a,_1). G(_1,_2).").unwrap();
        assert!(sols.iter().any(|x| isomorphic(x, &t2)), "T2 missing");
        assert!(sols.iter().any(|x| isomorphic(x, &t3)), "T3 missing");
    }

    #[test]
    fn empty_source_has_single_empty_solution() {
        let d = example_5_3();
        let (sols, _) = enumerate_cwa_solutions(&d, &Instance::new(), &EnumLimits::default());
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    /// A replay that exhausts its step budget must surface as
    /// `chases_unfinished` (answer possibly incomplete), not be lumped
    /// into the definite `chases_failed` bucket.
    #[test]
    fn budget_exceeded_replay_is_not_mislabeled_as_failed() {
        // Transitive closure over a chain: no existentials (so scripts
        // never fork), but the closure needs more steps than the budget.
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(1,2). E(2,3). E(3,4). E(4,5). E(5,6).").unwrap();
        let limits = EnumLimits {
            chase_budget: dex_chase::ChaseBudget::new(3, 1_000),
            ..EnumLimits::default()
        };
        let (pres, stats) = enumerate_cwa_presolutions(&d, &s, &limits);
        assert!(pres.is_empty());
        assert_eq!(stats.chases_unfinished, 1);
        assert_eq!(stats.chases_failed, 0);
        assert!(!stats.is_complete());
        // A generous budget decides the same setting completely.
        let (pres, stats) = enumerate_cwa_presolutions(&d, &s, &EnumLimits::default());
        assert_eq!(pres.len(), 1);
        assert!(stats.is_complete());
    }

    /// A cancelled run reports the interrupt instead of a silently-empty
    /// "no CWA-solutions" answer.
    #[test]
    fn cancelled_run_reports_interrupt_not_empty_answer() {
        use dex_core::govern::InterruptReason;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let d = example_5_3();
        let s = parse_instance("P(1).").unwrap();
        let flag = Arc::new(AtomicBool::new(false));
        flag.store(true, Ordering::Relaxed);
        let limits = EnumLimits {
            chase_budget: dex_chase::ChaseBudget::probe().with_cancel(Arc::clone(&flag)),
            nulls_only: true,
            ..EnumLimits::default()
        };
        let (sols, stats) = enumerate_cwa_solutions(&d, &s, &limits);
        assert!(sols.is_empty());
        let i = stats.interrupted.expect("cancel must be reported");
        assert_eq!(i.reason, InterruptReason::Cancelled);
        assert!(!stats.is_complete());
        // Without the flag raised the same limits enumerate normally.
        flag.store(false, Ordering::Relaxed);
        let (sols, stats) = enumerate_cwa_solutions(&d, &s, &limits);
        assert!(!sols.is_empty());
        assert!(stats.is_complete());
    }

    /// `EnumStats::validate` accepts every real enumeration outcome and
    /// rejects books that don't balance.
    #[test]
    fn enum_stats_validate_and_json() {
        let d = example_5_3();
        let s = parse_instance("P(1).").unwrap();
        let limits = EnumLimits {
            nulls_only: true,
            ..EnumLimits::default()
        };
        let (_, stats) = enumerate_cwa_solutions(&d, &s, &limits);
        stats.validate().expect("real run validates");
        let j = stats.to_json();
        assert_eq!(
            j.get("scripts_explored").and_then(|v| v.as_u128()),
            Some(stats.scripts_explored as u128)
        );
        assert_eq!(j.get("interrupted"), Some(&dex_obs::JsonValue::Null));
        // The JSON round-trips through the in-tree parser.
        assert_eq!(dex_obs::parse(&j.dump()).unwrap(), j);
        // More outcomes than scripts (+1 for the canonical chase) is
        // inconsistent bookkeeping.
        let bad = EnumStats {
            scripts_explored: 1,
            chases_succeeded: 2,
            chases_failed: 1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        // An interrupt count without the interrupt itself (or vice versa)
        // is inconsistent.
        let bad = EnumStats {
            scripts_explored: 3,
            chases_interrupted: 1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    /// The tentpole determinism property, locally: every thread count
    /// yields byte-identical solutions and identical deterministic stat
    /// counters (the cross-crate 64-seed sweep lives in dex-bench).
    #[test]
    fn parallel_enumeration_is_byte_identical_across_thread_counts() {
        let d = example_5_3();
        let s = parse_instance("P(1). P(2).").unwrap();
        let limits = EnumLimits {
            nulls_only: true,
            ..EnumLimits::default()
        };
        let (base_sols, base_stats) =
            enumerate_cwa_solutions_opts(&d, &s, &limits, &EnumOpts::default());
        assert!(!base_sols.is_empty());
        for threads in [2, 4, 8] {
            let opts = EnumOpts::default().with_pool(dex_core::Pool::new(threads));
            let (sols, stats) = enumerate_cwa_solutions_opts(&d, &s, &limits, &opts);
            assert_eq!(sols, base_sols, "solutions differ at {threads} threads");
            assert_eq!(stats.scripts_explored, base_stats.scripts_explored);
            assert_eq!(stats.chases_succeeded, base_stats.chases_succeeded);
            assert_eq!(stats.chases_failed, base_stats.chases_failed);
            assert_eq!(stats.chases_unfinished, base_stats.chases_unfinished);
            assert_eq!(stats.truncated, base_stats.truncated);
            // Merged chase counters (not times) are deterministic too.
            assert_eq!(stats.chase.tgd_steps, base_stats.chase.tgd_steps);
            assert_eq!(stats.chase.atoms_inserted, base_stats.chase.atoms_inserted);
            assert_eq!(stats.chase.peak_atoms, base_stats.chase.peak_atoms);
            stats.validate().expect("parallel stats validate");
        }
    }

    /// Truncation bookkeeping must also be thread-count independent:
    /// speculative replays beyond the cut are discarded, not counted.
    #[test]
    fn parallel_truncation_is_thread_count_independent() {
        let d = example_5_3();
        let s = parse_instance("P(1). P(2). P(3).").unwrap();
        let limits = EnumLimits {
            max_scripts: 50,
            nulls_only: true,
            ..EnumLimits::default()
        };
        let (base, base_stats) =
            enumerate_cwa_presolutions_opts(&d, &s, &limits, &EnumOpts::default());
        assert!(base_stats.truncated);
        assert_eq!(base_stats.scripts_explored, 50);
        for threads in [2, 8] {
            let opts = EnumOpts::default().with_pool(dex_core::Pool::new(threads));
            let (pres, stats) = enumerate_cwa_presolutions_opts(&d, &s, &limits, &opts);
            assert_eq!(pres, base);
            assert_eq!(stats.scripts_explored, 50);
            assert!(stats.truncated);
        }
    }

    /// Tracing under parallel enumeration re-emits per-replay rings in
    /// submission order: the stream is identical to the sequential one.
    #[test]
    fn parallel_trace_stream_matches_sequential() {
        use dex_obs::RingRecorder;
        use std::sync::Arc;
        let d = example_5_3();
        let s = parse_instance("P(1).").unwrap();
        let limits = EnumLimits {
            nulls_only: true,
            ..EnumLimits::default()
        };
        let streams: Vec<String> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let ring = Arc::new(RingRecorder::new(1 << 16));
                // A mocked clock pins every timestamp and span duration,
                // so the reassembled stream can be compared byte-for-byte.
                let (clock, mc) = dex_core::Clock::mock();
                mc.set_ns(42);
                let opts = EnumOpts::default()
                    .with_pool(dex_core::Pool::new(threads))
                    .with_tracer(dex_obs::Tracer::new(ring.clone()))
                    .with_clock(clock);
                let _ = enumerate_cwa_presolutions_opts(&d, &s, &limits, &opts);
                assert_eq!(ring.dropped(), 0);
                ring.to_jsonl()
            })
            .collect();
        assert!(!streams[0].is_empty(), "tracing recorded nothing");
        assert_eq!(streams[0], streams[1]);
    }

    #[test]
    fn limits_truncate_gracefully() {
        let d = example_5_3();
        let s = parse_instance("P(1). P(2). P(3).").unwrap();
        let limits = EnumLimits {
            max_scripts: 50,
            nulls_only: true,
            ..EnumLimits::default()
        };
        let (_, stats) = enumerate_cwa_presolutions(&d, &s, &limits);
        assert!(stats.truncated);
    }
}
