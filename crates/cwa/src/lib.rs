//! # dex-cwa
//!
//! CWA-presolutions and CWA-solutions for data exchange settings with
//! target dependencies (Hernich & Schweikardt, PODS 2007, Sections 4-5):
//!
//! - deciding CWA-presolutionship by derivation search and extracting
//!   witnessing α-tables ([`presolution`]);
//! - CWA-solution checks via Theorem 4.8, existence via Corollary 5.2,
//!   and the core as the unique minimal CWA-solution per Theorem 5.1
//!   ([`solution`]);
//! - the canonical maximal solution `CanSol` for Proposition 5.4's
//!   restricted setting classes ([`cansol`]);
//! - exhaustive enumeration of CWA-solutions up to isomorphism, used to
//!   reproduce Example 5.3's exponentially many incomparable solutions
//!   ([`enumerate`]).

pub mod cansol;
pub mod enumerate;
pub mod presolution;
pub mod solution;

pub use cansol::{cansol, cansol_class, CanSolClass};
pub use enumerate::{
    enumerate_cwa_presolutions, enumerate_cwa_presolutions_opts, enumerate_cwa_solutions,
    enumerate_cwa_solutions_opts, maximal_under_image, EnumLimits, EnumOpts, EnumStats,
};
pub use presolution::{
    is_cwa_presolution, is_cwa_presolution_governed, presolution_alpha_table,
    presolution_justifications, SearchLimits,
};
pub use solution::{
    core_solution, core_solution_governed, cwa_solution_exists, is_cwa_solution,
    is_cwa_solution_governed, is_homomorphic_image_of, is_minimal_cwa_solution,
    is_universal_solution, is_universal_solution_governed,
};
