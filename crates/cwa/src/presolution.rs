//! Deciding whether a target instance is a CWA-presolution
//! (Definition 4.6): does some `α: J_D → Dom` exist such that `S ∪ T` is
//! the result of a successful α-chase of `S` with `Σ`?
//!
//! The decision procedure searches for a *derivation*: a per-trigger
//! choice of existential witnesses (the α-values) whose heads stay inside
//! `S ∪ T`, such that firing the chosen triggers from `S` derives every
//! atom of `T`. By Lemma 4.5 successful α-chases apply only tgds, and
//! because tgd firing is monotone and commutative once the choices are
//! fixed, the firing order is irrelevant — the search branches only on
//! the witness choices. This matches the NP upper bound the paper sketches
//! at the end of Section 6.

use dex_core::govern::{Governor, Interrupt};
use dex_core::{Atom, Instance, Value};
use dex_logic::{Assignment, Setting, Tgd, Var};
use std::collections::HashSet;

/// Limits for the derivation search.
#[derive(Copy, Clone, Debug)]
pub struct SearchLimits {
    /// Maximum number of DFS nodes to explore.
    pub max_nodes: usize,
}

impl Default for SearchLimits {
    fn default() -> SearchLimits {
        SearchLimits { max_nodes: 200_000 }
    }
}

/// One tgd trigger `(d, ū, v̄)` over `S ∪ T` with its possible α-heads.
struct Trigger {
    /// Body assignment (binds frontier and body-only variables).
    env: Assignment,
    /// Index into the tgd list.
    tgd: usize,
    /// The possible instantiated heads (each a choice of `w̄` keeping all
    /// head atoms inside `S ∪ T`), deduplicated.
    options: Vec<Vec<Atom>>,
}

/// Decides whether `target` is a CWA-presolution for `source` under
/// `setting`. Conservative under resource exhaustion: returns `None` if
/// the search hits `limits` without an answer.
pub fn is_cwa_presolution(
    setting: &Setting,
    source: &Instance,
    target: &Instance,
    limits: &SearchLimits,
) -> Option<bool> {
    decide(setting, source, target, limits, None).expect("ungoverned search cannot be interrupted")
}

/// [`is_cwa_presolution`] under a [`Governor`]: the NP-hard derivation
/// search ticks the governor per explored node and per enumerated
/// trigger, returning `Err` with the interrupt when fuel, deadline or a
/// cancel flag trips before the node limit does.
pub fn is_cwa_presolution_governed(
    setting: &Setting,
    source: &Instance,
    target: &Instance,
    limits: &SearchLimits,
    gov: &Governor,
) -> Result<Option<bool>, Interrupt> {
    decide(setting, source, target, limits, Some(gov))
}

fn decide(
    setting: &Setting,
    source: &Instance,
    target: &Instance,
    limits: &SearchLimits,
    gov: Option<&Governor>,
) -> Result<Option<bool>, Interrupt> {
    // The result of a successful chase satisfies Σ; cheap rejections first.
    if target.check_against(&setting.target).is_err() {
        return Ok(Some(false));
    }
    let universe = source.union(target);
    if !setting.egds.iter().all(|e| e.satisfied(&universe)) {
        return Ok(Some(false));
    }
    let tgds: Vec<&Tgd> = setting.all_tgds().collect();
    let st_count = setting.st_tgds.len();

    // Enumerate all triggers over the final universe with their options.
    let mut triggers: Vec<Trigger> = Vec::new();
    for (ti, tgd) in tgds.iter().enumerate() {
        let body_inst = if ti < st_count { source } else { &universe };
        for env in tgd.body.matches(body_inst) {
            if let Some(g) = gov {
                g.check()?;
            }
            let options = head_options(tgd, &universe, &env);
            if options.is_empty() {
                // Some trigger can never have its ᾱ-head inside S ∪ T:
                // no α-chase staying within the universe satisfies it.
                return Ok(Some(false));
            }
            triggers.push(Trigger {
                env,
                tgd: ti,
                options,
            });
        }
    }

    // Derivation search.
    let mut search = Search {
        tgds: &tgds,
        st_count,
        source,
        universe: &universe,
        triggers: &triggers,
        nodes: 0,
        max_nodes: limits.max_nodes,
        seen: HashSet::new(),
        exhausted: false,
        solution: None,
        gov,
        interrupt: None,
    };
    let fired = vec![None; triggers.len()];
    let derived = source.clone();
    let found = search.dfs(derived, fired);
    if let Some(i) = search.interrupt {
        debug_assert!(!found);
        return Err(i);
    }
    if search.exhausted && !found {
        Ok(None)
    } else {
        Ok(Some(found))
    }
}

/// Like [`is_cwa_presolution`], but on success also returns the witnessing
/// per-trigger choices as an α-table: one entry per fired justification
/// `(d, ū, v̄, zᵢ)` mapping to the chosen witness value.
pub fn presolution_alpha_table(
    setting: &Setting,
    source: &Instance,
    target: &Instance,
    limits: &SearchLimits,
) -> Option<Vec<(dex_chase::Justification, Value)>> {
    if target.check_against(&setting.target).is_err() {
        return None;
    }
    let universe = source.union(target);
    if !setting.egds.iter().all(|e| e.satisfied(&universe)) {
        return None;
    }
    let tgds: Vec<&Tgd> = setting.all_tgds().collect();
    let st_count = setting.st_tgds.len();
    let mut triggers: Vec<Trigger> = Vec::new();
    let mut witnesses: Vec<Vec<Vec<Value>>> = Vec::new();
    for (ti, tgd) in tgds.iter().enumerate() {
        let body_inst = if ti < st_count { source } else { &universe };
        for env in tgd.body.matches(body_inst) {
            let (options, ws) = head_options_with_witnesses(tgd, &universe, &env);
            if options.is_empty() {
                return None;
            }
            triggers.push(Trigger {
                env,
                tgd: ti,
                options,
            });
            witnesses.push(ws);
        }
    }
    let mut search = Search {
        tgds: &tgds,
        st_count,
        source,
        universe: &universe,
        triggers: &triggers,
        nodes: 0,
        max_nodes: limits.max_nodes,
        seen: HashSet::new(),
        exhausted: false,
        solution: None,
        gov: None,
        interrupt: None,
    };
    let found = search.dfs(source.clone(), vec![None; triggers.len()]);
    if !found {
        return None;
    }
    let choices = search.solution.expect("dfs success records choices");
    let mut table = Vec::new();
    for (i, choice) in choices.iter().enumerate() {
        let Some(opt_idx) = choice else { continue };
        let t = &triggers[i];
        let tgd = tgds[t.tgd];
        let frontier: Vec<Value> = tgd
            .frontier()
            .iter()
            .map(|&v: &Var| t.env.get(v).expect("bound"))
            .collect();
        let body_only: Vec<Value> = tgd
            .body_only_vars()
            .iter()
            .map(|&v| t.env.get(v).expect("bound"))
            .collect();
        for (zi, &w) in witnesses[i][*opt_idx].iter().enumerate() {
            table.push((
                dex_chase::Justification {
                    dep: t.tgd,
                    frontier: frontier.clone(),
                    body_only: body_only.clone(),
                    z_index: zi,
                },
                w,
            ));
        }
    }
    Some(table)
}

/// The justification cross-check of Definition 4.6 made executable:
/// extract a witnessing α-table for `target`, replay it through the
/// provenance-recording delta engine, and verify that *every* atom of
/// the replayed result `S ∪ T` carries a recorded justification chain.
/// Returns the provenance on success; `None` if `target` is not a
/// presolution (or the search hit its limits). A `Some` answer is
/// strictly stronger than [`is_cwa_presolution`] returning `Some(true)`:
/// the witnessing α has actually been replayed and audited atom by atom.
pub fn presolution_justifications(
    setting: &Setting,
    source: &Instance,
    target: &Instance,
    limits: &SearchLimits,
) -> Option<dex_chase::Provenance> {
    let table = presolution_alpha_table(setting, source, target, limits)?;
    let mut alpha = dex_chase::TableAlpha::new(table);
    let engine = dex_chase::ChaseEngine::new(setting, &dex_chase::ChaseBudget::default())
        .with_provenance(true);
    let success = engine.run_alpha(source, &mut alpha).success()?;
    let prov = success.provenance.expect("provenance was enabled");
    prov.verify_justified(&success.result).ok()?;
    Some(prov)
}

/// Head options together with the existential witness tuples `w̄`.
fn head_options_with_witnesses(
    tgd: &Tgd,
    universe: &Instance,
    env: &Assignment,
) -> (Vec<Vec<Atom>>, Vec<Vec<Value>>) {
    let matches = dex_logic::matcher::all_matches(&tgd.head, universe, env);
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut opts = Vec::new();
    let mut ws = Vec::new();
    for m in matches {
        let w: Vec<Value> = tgd
            .exist_vars
            .iter()
            .map(|&z| m.get(z).expect("head match binds existentials"))
            .collect();
        if seen.insert(w.clone()) {
            opts.push(tgd.instantiate_head(&m));
            ws.push(w);
        }
    }
    (opts, ws)
}

/// All distinct instantiated heads of `tgd` under `env` whose atoms lie in
/// `universe` (one per choice of existential witnesses `w̄`).
fn head_options(tgd: &Tgd, universe: &Instance, env: &Assignment) -> Vec<Vec<Atom>> {
    let matches = dex_logic::matcher::all_matches(&tgd.head, universe, env);
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut out = Vec::new();
    for m in matches {
        let w: Vec<Value> = tgd
            .exist_vars
            .iter()
            .map(|&z| m.get(z).expect("head match binds existentials"))
            .collect();
        if seen.insert(w) {
            out.push(tgd.instantiate_head(&m));
        }
    }
    out
}

struct Search<'a> {
    tgds: &'a [&'a Tgd],
    st_count: usize,
    source: &'a Instance,
    universe: &'a Instance,
    triggers: &'a [Trigger],
    nodes: usize,
    max_nodes: usize,
    seen: HashSet<(Vec<Atom>, Vec<bool>)>,
    exhausted: bool,
    /// On success: the option index chosen per fired trigger.
    solution: Option<Vec<Option<usize>>>,
    /// Optional governor, ticked once per explored node.
    gov: Option<&'a Governor>,
    /// Set when the governor trips; the search unwinds without an answer.
    interrupt: Option<Interrupt>,
}

impl Search<'_> {
    /// True iff the body of trigger `t` is satisfied in `derived`.
    fn body_ready(&self, t: &Trigger, derived: &Instance) -> bool {
        let tgd = self.tgds[t.tgd];
        if t.tgd < self.st_count {
            // s-t bodies are matched over the (fully derived) source.
            let _ = derived;
            tgd.body.holds(self.source, &t.env)
        } else {
            tgd.body.holds(derived, &t.env)
        }
    }

    fn dfs(&mut self, mut derived: Instance, mut fired: Vec<Option<usize>>) -> bool {
        if let Some(g) = self.gov {
            if let Err(i) = g.check() {
                self.interrupt = Some(i);
                return false;
            }
        }
        if self.nodes >= self.max_nodes {
            self.exhausted = true;
            return false;
        }
        self.nodes += 1;

        // Saturate forced moves: fire every ready trigger with exactly one
        // option (any α must use it, and firing is monotone).
        loop {
            let mut progressed = false;
            for (i, t) in self.triggers.iter().enumerate() {
                if fired[i].is_none() && t.options.len() == 1 && self.body_ready(t, &derived) {
                    fired[i] = Some(0);
                    for a in &t.options[0] {
                        derived.insert(a.clone());
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        if derived.len() == self.universe.len() {
            self.solution = Some(fired);
            return true;
        }
        // Memo key: derived atoms *and* which triggers are spent — the
        // same derived set is more promising with fewer triggers fired.
        let key = (
            derived.sorted_atoms(),
            fired.iter().map(Option::is_some).collect::<Vec<bool>>(),
        );
        if !self.seen.insert(key) {
            return false;
        }
        // Branch on some ready multi-option trigger, preferring ones that
        // can add an uncovered atom.
        let candidates: Vec<usize> = (0..self.triggers.len())
            .filter(|&i| fired[i].is_none() && self.body_ready(&self.triggers[i], &derived))
            .collect();
        let branch = candidates
            .iter()
            .copied()
            .find(|&i| {
                self.triggers[i]
                    .options
                    .iter()
                    .any(|opt| opt.iter().any(|a| !derived.contains(a)))
            })
            .or_else(|| candidates.first().copied());
        let Some(i) = branch else {
            // Nothing ready and not all of T derived: some atom of T is
            // unjustified for every α extending this prefix.
            return false;
        };
        let options = self.triggers[i].options.clone();
        for (oi, opt) in options.iter().enumerate() {
            let mut next = derived.clone();
            for a in opt {
                next.insert(a.clone());
            }
            let mut next_fired = fired.clone();
            next_fired[i] = Some(oi);
            if self.dfs(next, next_fired) {
                return true;
            }
            if self.exhausted || self.interrupt.is_some() {
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_instance, parse_setting};

    fn example_2_1() -> Setting {
        parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }
             t {
               d3: F(y,x) -> exists z . G(x,z);
               d4: F(x,y) & F(x,z) -> y = z;
             }",
        )
        .unwrap()
    }

    fn s_star() -> Instance {
        parse_instance("M(a,b). N(a,b). N(a,c).").unwrap()
    }

    fn check(t: &str) -> bool {
        is_cwa_presolution(
            &example_2_1(),
            &s_star(),
            &parse_instance(t).unwrap(),
            &SearchLimits::default(),
        )
        .expect("search within limits")
    }

    /// T₂ of Example 2.1 is a CWA-presolution (witnessed by α₁).
    #[test]
    fn t2_is_a_presolution() {
        assert!(check("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4)."));
    }

    /// Example 4.9: T' = {E(a,b), F(a,_1), G(_1,b)} is a CWA-presolution
    /// (α maps d3's z to the constant b).
    #[test]
    fn t_prime_with_constant_g_is_a_presolution() {
        assert!(check("E(a,b). F(a,_1). G(_1,b)."));
    }

    /// Example 4.9: T'' contains the unjustified atom E(_3,b) — not a
    /// CWA-presolution.
    #[test]
    fn unjustified_atom_is_rejected() {
        assert!(!check("E(a,b). E(_3,b). F(b,_1). G(_1,_2)."));
    }

    /// T₃ (the core) is a presolution: α maps d2's z1 for both triggers to
    /// the existing values and shares the F-null.
    #[test]
    fn t3_core_is_a_presolution() {
        assert!(check("E(a,b). F(a,_1). G(_1,_2)."));
    }

    /// T₁ of Example 2.1 invents constants c/d in existential positions —
    /// those are justifiable as α-values, but E(c,_2) requires a trigger
    /// with frontier c, which no source atom provides... except d2 with
    /// N(a,c)? No: d2's frontier is x=a for both triggers. E(c,_2) is
    /// unjustified.
    #[test]
    fn t1_is_not_a_presolution() {
        assert!(!check("E(a,b). E(a,_1). E(c,_2). F(a,d). G(d,_3)."));
    }

    /// A solution that is "too small" — missing d3's G-atom — fails the
    /// upfront option check (it is not even a solution).
    #[test]
    fn missing_required_head_is_rejected() {
        assert!(!check("E(a,b). E(a,_1). E(a,_2). F(a,_3)."));
    }

    /// Extra unjustified duplicates are rejected: two F-atoms would
    /// violate the egd d4, failing the universe check.
    #[test]
    fn egd_violating_target_is_rejected() {
        assert!(!check(
            "E(a,b). E(a,_1). F(a,_2). F(a,_3). G(_2,_4). G(_3,_5)."
        ));
    }

    /// The empty target for a non-empty source is not a presolution (the
    /// s-t triggers have no options).
    #[test]
    fn empty_target_is_rejected() {
        assert!(!check("E(a,b)."));
    }

    #[test]
    fn governed_search_matches_ungoverned_when_unlimited() {
        let d = example_2_1();
        let s = s_star();
        let t2 = parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap();
        let gov = Governor::unlimited();
        assert_eq!(
            is_cwa_presolution_governed(&d, &s, &t2, &SearchLimits::default(), &gov),
            Ok(Some(true))
        );
    }

    #[test]
    fn governed_search_reports_fuel_interrupt() {
        let d = example_2_1();
        let s = s_star();
        let t2 = parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap();
        let gov = Governor::unlimited().with_fuel(2);
        let err = is_cwa_presolution_governed(&d, &s, &t2, &SearchLimits::default(), &gov)
            .expect_err("2 ticks cannot finish the search");
        assert_eq!(err.reason, dex_core::govern::InterruptReason::Fuel);
    }

    #[test]
    fn alpha_table_replays_to_the_same_presolution() {
        let d = example_2_1();
        let s = s_star();
        let t2 = parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap();
        let table = presolution_alpha_table(&d, &s, &t2, &SearchLimits::default())
            .expect("T2 is a presolution");
        assert!(!table.is_empty());
        // Replaying the extracted α through the real α-chase reproduces
        // S ∪ T₂ exactly (Definition 4.6).
        let mut alpha = dex_chase::TableAlpha::new(table);
        let out = dex_chase::alpha_chase(&d, &s, &mut alpha, &dex_chase::ChaseBudget::default());
        let success = out.success().expect("replay succeeds");
        assert_eq!(success.target, t2);
    }

    /// The provenance cross-check: replaying T₂'s witnessing α records a
    /// justification chain for every atom of S ∪ T₂, each bottoming out
    /// in source atoms.
    #[test]
    fn presolution_justifications_audit_t2() {
        let d = example_2_1();
        let s = s_star();
        let t2 = parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap();
        let prov = presolution_justifications(&d, &s, &t2, &SearchLimits::default())
            .expect("T2 is a presolution with a full justification audit");
        for atom in s.union(&t2).atoms() {
            let chain = prov.explain(&atom).expect("every atom is justified");
            assert!(chain.ends_in_sources(), "chain for {atom} has dead ends");
        }
        // A non-presolution yields no audit at all.
        let t_bad = parse_instance("E(a,b). E(_3,b). F(b,_1). G(_1,_2).").unwrap();
        assert!(presolution_justifications(&d, &s, &t_bad, &SearchLimits::default()).is_none());
    }

    /// Settings without target dependencies coincide with Libkin's notion:
    /// every subset obtained by per-justification choices is a
    /// presolution; the full fresh instantiation certainly is.
    #[test]
    fn no_target_deps_matches_libkin() {
        let d = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }",
        )
        .unwrap();
        let s = s_star();
        let lim = SearchLimits::default();
        let t_full = parse_instance("E(a,b). E(a,_1). F(a,_2). E(a,_3). F(a,_4).").unwrap();
        assert_eq!(is_cwa_presolution(&d, &s, &t_full, &lim), Some(true));
        // Libkin's Section 3 list: {E(a,b), E(a,_1), F(a,_2)} (z1 of both
        // triggers folded onto existing values).
        let t_small = parse_instance("E(a,b). E(a,_1), F(a,_2).").unwrap();
        assert_eq!(is_cwa_presolution(&d, &s, &t_small, &lim), Some(true));
        // But dropping the F-atom is not (d2's head needs an F-atom).
        let t_bad = parse_instance("E(a,b). E(a,_1).").unwrap();
        assert_eq!(is_cwa_presolution(&d, &s, &t_bad, &lim), Some(false));
    }
}
