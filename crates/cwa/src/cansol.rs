//! The canonical (maximal) CWA-solution `CanSol_D(S)` for the restricted
//! setting classes of Proposition 5.4:
//!
//! 1. `Σ_t` consists of egds only, or
//! 2. `Σ_st` and `Σ_t` consist of egds and full tgds.
//!
//! For class 1, `CanSol` is Libkin's canonical solution (every
//! justification instantiated with its own fresh nulls) followed by egd
//! merging: the merge is folded *into* α (each justification maps directly
//! to the merged value), which is exactly why the naive fresh-α chase may
//! diverge while `CanSol` still exists. For class 2 there are no
//! existential variables at all, so the (unique) CWA-presolution is the
//! standard chase result.

use dex_chase::{ChaseBudget, ChaseError};
use dex_core::{merge_policy, Instance, NullGen, Value};
use dex_logic::Setting;

/// Which of Proposition 5.4's classes a setting falls into.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CanSolClass {
    /// Target dependencies are egds only (arbitrary s-t tgds).
    EgdsOnlyTarget,
    /// All tgds (s-t and target) are full; target may also have egds.
    FullTgdsAndEgds,
    /// Neither — a unique maximal CWA-solution is not guaranteed
    /// (Example 5.3 exhibits exponentially many incomparable ones).
    NotGuaranteed,
}

/// Classifies `setting` per Proposition 5.4.
pub fn cansol_class(setting: &Setting) -> CanSolClass {
    if setting.t_tgds.is_empty() {
        return CanSolClass::EgdsOnlyTarget;
    }
    if setting.is_full_st() && setting.target_tgds_are_full() {
        return CanSolClass::FullTgdsAndEgds;
    }
    CanSolClass::NotGuaranteed
}

/// Computes `CanSol_D(S)` for settings in Proposition 5.4's classes.
/// Returns `Ok(None)` when the setting is in neither class, and
/// `Err(EgdConflict)` when no solution exists.
pub fn cansol(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> Result<Option<Instance>, ChaseError> {
    match cansol_class(setting) {
        CanSolClass::NotGuaranteed => Ok(None),
        CanSolClass::FullTgdsAndEgds => {
            // No existentials anywhere: the standard chase result is the
            // unique CWA-presolution (and CanSol).
            let s = dex_chase::chase(setting, source, budget)?;
            Ok(Some(s.target))
        }
        CanSolClass::EgdsOnlyTarget => {
            let gov = budget.governor(&dex_core::govern::Clock::real());
            // 1. Libkin's canonical presolution: fire every s-t trigger
            //    once with fresh nulls (no target tgds exist).
            let mut inst = source.clone();
            let mut nulls = NullGen::above(source.active_domain().iter());
            for tgd in &setting.st_tgds {
                for env in tgd.body.matches(source) {
                    gov.check()?;
                    let mut full = env.clone();
                    for &z in &tgd.exist_vars {
                        full.bind(z, nulls.fresh_value());
                    }
                    for atom in tgd.instantiate_head(&full) {
                        inst.insert(atom);
                    }
                }
            }
            // 2. Egd merging to fixpoint, in place: each violation is
            //    resolved by the footnote-4 policy and applied through
            //    `Instance::merge_value`, instead of cloning the whole
            //    instance per repair. The merge homomorphism composed
            //    with the fresh α is the witnessing α for the result.
            let mut steps = 0usize;
            loop {
                gov.force_check()?;
                if steps >= budget.max_steps {
                    return Err(ChaseError::BudgetExceeded {
                        steps,
                        atoms: inst.len(),
                    });
                }
                let mut violation = None;
                for (ei, egd) in setting.egds.iter().enumerate() {
                    if let Some(env) = egd.first_violation(&inst) {
                        let l = env.get(egd.lhs).expect("egd body binds lhs");
                        let r = env.get(egd.rhs).expect("egd body binds rhs");
                        violation = Some((ei, env, l, r));
                        break;
                    }
                }
                let Some((ei, env, l, r)) = violation else {
                    break;
                };
                match merge_policy(l, r) {
                    Err((c, d)) => {
                        return Err(ChaseError::EgdConflict {
                            witness: Box::new(dex_chase::ConflictWitness::from_trigger(
                                &setting.egds[ei],
                                ei,
                                &env,
                                Value::Const(c),
                                Value::Const(d),
                            )),
                        })
                    }
                    Ok(Some(m)) => {
                        inst.merge_value(m.loser, m.winner);
                        steps += 1;
                    }
                    // first_violation only reports l != r.
                    Ok(None) => unreachable!("violation with equal sides"),
                }
            }
            Ok(Some(inst.difference(source)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presolution::{is_cwa_presolution, SearchLimits};
    use crate::solution::{is_cwa_solution, is_homomorphic_image_of};
    use dex_core::Value;
    use dex_logic::{parse_instance, parse_setting};

    #[test]
    fn classification() {
        let egds_only = parse_setting(
            "source { P/1 }
             target { F/2 }
             st { P(x) -> exists z . F(x,z); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        assert_eq!(cansol_class(&egds_only), CanSolClass::EgdsOnlyTarget);

        let full = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        assert_eq!(cansol_class(&full), CanSolClass::FullTgdsAndEgds);

        let general = parse_setting(
            "source { P/1 }
             target { F/2, G/2 }
             st { P(x) -> exists z . F(x,z); }
             t { F(x,y) -> exists w . G(y,w); }",
        )
        .unwrap();
        assert_eq!(cansol_class(&general), CanSolClass::NotGuaranteed);
    }

    /// Egds-only class: CanSol exists even when the fresh-α chase
    /// diverges (the egd folds nulls onto a constant).
    #[test]
    fn cansol_with_constant_forcing_egd() {
        let d = parse_setting(
            "source { P/1, Q/2 }
             target { F/2 }
             st {
               d1: P(x) -> exists z . F(x,z);
               d2: Q(x,y) -> F(x,y);
             }
             t { key: F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a). Q(a,c).").unwrap();
        let t = cansol(&d, &s, &ChaseBudget::default()).unwrap().unwrap();
        assert_eq!(t, parse_instance("F(a,c).").unwrap());
        // It really is a CWA-solution (and here the only one).
        assert_eq!(
            is_cwa_solution(
                &d,
                &s,
                &t,
                &ChaseBudget::default(),
                &SearchLimits::default()
            )
            .unwrap(),
            Some(true)
        );
    }

    /// Without egds the CanSol is Libkin's canonical solution, and every
    /// CWA-solution is a homomorphic image of it (Proposition 5.4).
    #[test]
    fn cansol_without_target_deps_is_maximal() {
        let d = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }",
        )
        .unwrap();
        let s = parse_instance("M(a,b). N(a,b).").unwrap();
        let can = cansol(&d, &s, &ChaseBudget::default()).unwrap().unwrap();
        // E(a,b) + E(a,_1) + F(a,_2).
        assert_eq!(can.len(), 3);
        // The three Libkin CWA-solutions are images of CanSol.
        for t in ["E(a,b). F(a,_1).", "E(a,b). E(a,_1). F(a,_2)."] {
            let t = parse_instance(t).unwrap();
            assert_eq!(
                is_cwa_presolution(&d, &s, &t, &SearchLimits::default()),
                Some(true)
            );
            assert!(is_homomorphic_image_of(&t, &can));
        }
    }

    #[test]
    fn cansol_full_class_is_the_chase_result() {
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,b). E(b,c).").unwrap();
        let t = cansol(&d, &s, &ChaseBudget::default()).unwrap().unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.contains(&dex_core::Atom::of(
            "T",
            vec![Value::konst("a"), Value::konst("c")]
        )));
    }

    #[test]
    fn cansol_not_guaranteed_returns_none() {
        let d = parse_setting(
            "source { P/1 }
             target { F/2, G/2 }
             st { P(x) -> exists z . F(x,z); }
             t { F(x,y) -> exists w . G(y,w); }",
        )
        .unwrap();
        let s = parse_instance("P(a).").unwrap();
        assert_eq!(cansol(&d, &s, &ChaseBudget::default()).unwrap(), None);
    }

    #[test]
    fn cansol_honors_cancel_flag() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let d = parse_setting(
            "source { P/1 }
             target { F/2 }
             st { P(x) -> exists z . F(x,z); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(1). P(2).").unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let budget = ChaseBudget::default().with_cancel(flag);
        match cansol(&d, &s, &budget) {
            Err(ChaseError::Interrupted(i)) => {
                assert_eq!(i.reason, dex_core::govern::InterruptReason::Cancelled);
            }
            other => panic!("expected interrupt, got {other:?}"),
        }
    }

    #[test]
    fn cansol_conflict_propagates() {
        let d = parse_setting(
            "source { Q/2 }
             target { F/2 }
             st { Q(x,y) -> F(x,y); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("Q(a,b). Q(a,c).").unwrap();
        assert!(matches!(
            cansol(&d, &s, &ChaseBudget::default()),
            Err(ChaseError::EgdConflict { .. })
        ));
    }
}
