//! CWA-solutions (Definition 4.7 / Theorem 4.8) and the basic results of
//! Section 5: existence, the core as the unique minimal CWA-solution
//! (Theorem 5.1, Corollary 5.2), and the minimal/maximal relations between
//! CWA-solutions.

use crate::presolution::{is_cwa_presolution, is_cwa_presolution_governed, SearchLimits};
use dex_chase::{canonical_universal_solution, ChaseBudget, ChaseError};
use dex_core::govern::Governor;
use dex_core::{core, core_governed, has_homomorphism, isomorphic, GovernedCore, Instance};
use dex_logic::Setting;

/// True iff `t` is a *universal* solution for `source` under `setting`:
/// a solution admitting a homomorphism into every solution — equivalently
/// (given that the canonical universal solution exists) into the canonical
/// universal solution.
pub fn is_universal_solution(
    setting: &Setting,
    source: &Instance,
    t: &Instance,
    budget: &ChaseBudget,
) -> Result<bool, ChaseError> {
    if !setting.is_solution(source, t) {
        return Ok(false);
    }
    match canonical_universal_solution(setting, source, budget) {
        Ok(canon) => Ok(has_homomorphism(t, &canon)),
        // Chase failure means no solution exists at all — contradiction
        // with `t` being one, so only budget/interrupt errors propagate.
        Err(ChaseError::EgdConflict { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

/// [`is_universal_solution`] under a [`Governor`]: the NP-hard
/// homomorphism test into the canonical universal solution ticks the
/// governor, surfacing trips as [`ChaseError::Interrupted`].
pub fn is_universal_solution_governed(
    setting: &Setting,
    source: &Instance,
    t: &Instance,
    budget: &ChaseBudget,
    gov: &Governor,
) -> Result<bool, ChaseError> {
    if !setting.is_solution(source, t) {
        return Ok(false);
    }
    match canonical_universal_solution(setting, source, budget) {
        Ok(canon) => Ok(dex_core::HomFinder::new(t, &canon)
            .find_governed(gov)?
            .is_some()),
        Err(ChaseError::EgdConflict { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Theorem 4.8: `t` is a CWA-solution iff it is a universal solution *and*
/// a CWA-presolution. `None` when a search limit was hit.
pub fn is_cwa_solution(
    setting: &Setting,
    source: &Instance,
    t: &Instance,
    budget: &ChaseBudget,
    limits: &SearchLimits,
) -> Result<Option<bool>, ChaseError> {
    if !is_universal_solution(setting, source, t, budget)? {
        return Ok(Some(false));
    }
    Ok(is_cwa_presolution(setting, source, t, limits))
}

/// [`is_cwa_solution`] under a [`Governor`] governing both NP-hard legs
/// (the hom test of universality and the presolution derivation search).
/// The chase itself additionally honors the budget's deadline/cancel.
pub fn is_cwa_solution_governed(
    setting: &Setting,
    source: &Instance,
    t: &Instance,
    budget: &ChaseBudget,
    limits: &SearchLimits,
    gov: &Governor,
) -> Result<Option<bool>, ChaseError> {
    if !is_universal_solution_governed(setting, source, t, budget, gov)? {
        return Ok(Some(false));
    }
    Ok(is_cwa_presolution_governed(
        setting, source, t, limits, gov,
    )?)
}

/// Corollary 5.2: CWA-solutions exist iff universal solutions exist iff
/// the core of the universal solutions exists — for weakly acyclic
/// settings, decidable by running the standard chase.
pub fn cwa_solution_exists(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> Result<bool, ChaseError> {
    match canonical_universal_solution(setting, source, budget) {
        Ok(_) => Ok(true),
        Err(ChaseError::EgdConflict { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Theorem 5.1: the core of the universal solutions is a CWA-solution —
/// in fact the unique minimal one. Computed as chase-then-core
/// (Proposition 6.6's polynomial route for weakly acyclic settings).
pub fn core_solution(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> Result<Instance, ChaseError> {
    let canon = canonical_universal_solution(setting, source, budget)?;
    Ok(core(&canon))
}

/// [`core_solution`] under a [`Governor`]: if the governor trips during
/// core computation, the best retract found so far is returned tagged
/// `MaybeNotMinimal` — still a universal solution, possibly not minimal.
pub fn core_solution_governed(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
    gov: &Governor,
) -> Result<GovernedCore, ChaseError> {
    let canon = canonical_universal_solution(setting, source, budget)?;
    Ok(core_governed(&canon, gov))
}

/// A CWA-solution `t` is *minimal* if it is contained, up to renaming of
/// nulls, in every CWA-solution; by Theorem 5.1 this is exactly being
/// isomorphic to [`core_solution`].
pub fn is_minimal_cwa_solution(
    setting: &Setting,
    source: &Instance,
    t: &Instance,
    budget: &ChaseBudget,
) -> Result<bool, ChaseError> {
    let c = core_solution(setting, source, budget)?;
    Ok(isomorphic(t, &c))
}

/// The "homomorphic image" preorder on CWA-solutions: `a` subsumes `b`
/// when `b` is a homomorphic image of `a` (i.e. some hom maps `a` *onto*
/// `b`). Maximal CWA-solutions subsume all others (Section 5).
pub fn is_homomorphic_image_of(b: &Instance, a: &Instance) -> bool {
    image_search(a, b)
}

/// Searches for a homomorphism `h: a → b` with `h(a) = b` by enumerating
/// homomorphisms and checking atom-surjectivity of the image.
fn image_search(a: &Instance, b: &Instance) -> bool {
    if b.len() > a.len() {
        return false; // images cannot grow
    }
    if a.nulls().is_empty() {
        return a == b;
    }
    let mut found = false;
    dex_core::HomFinder::new(a, b).for_each(&mut |h| {
        if h.apply(a) == *b {
            found = true;
            false
        } else {
            true
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_instance, parse_setting};

    fn example_2_1() -> Setting {
        parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }
             t {
               d3: F(y,x) -> exists z . G(x,z);
               d4: F(x,y) & F(x,z) -> y = z;
             }",
        )
        .unwrap()
    }

    fn s_star() -> Instance {
        parse_instance("M(a,b). N(a,b). N(a,c).").unwrap()
    }

    fn t2() -> Instance {
        parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap()
    }

    fn t3() -> Instance {
        parse_instance("E(a,b). F(a,_1). G(_1,_2).").unwrap()
    }

    fn budget() -> ChaseBudget {
        ChaseBudget::default()
    }

    fn limits() -> SearchLimits {
        SearchLimits::default()
    }

    #[test]
    fn t2_and_t3_are_universal_t1_is_not() {
        let d = example_2_1();
        let s = s_star();
        assert!(is_universal_solution(&d, &s, &t2(), &budget()).unwrap());
        assert!(is_universal_solution(&d, &s, &t3(), &budget()).unwrap());
        let t1 = parse_instance("E(a,b). E(a,_1). E(c,_2). F(a,d). G(d,_3).").unwrap();
        assert!(!is_universal_solution(&d, &s, &t1, &budget()).unwrap());
    }

    /// Example 4.9: T₂ is a CWA-solution.
    #[test]
    fn t2_is_a_cwa_solution() {
        let d = example_2_1();
        assert_eq!(
            is_cwa_solution(&d, &s_star(), &t2(), &budget(), &limits()).unwrap(),
            Some(true)
        );
    }

    /// Example 4.9: T' = {E(a,b), F(a,_1), G(_1,b)} is a CWA-presolution
    /// but not a CWA-solution (the F-G-path of length 2 from a to b does
    /// not follow from S and Σ — it is not universal).
    #[test]
    fn presolution_but_not_universal_is_not_cwa_solution() {
        let d = example_2_1();
        let s = s_star();
        let t = parse_instance("E(a,b). F(a,_1). G(_1,b).").unwrap();
        assert_eq!(
            crate::presolution::is_cwa_presolution(&d, &s, &t, &limits()),
            Some(true)
        );
        assert_eq!(
            is_cwa_solution(&d, &s, &t, &budget(), &limits()).unwrap(),
            Some(false)
        );
    }

    /// Example 4.9: T'' = {E(a,b), E(_3,b), F(b,_1), G(_1,_2)} is a
    /// universal solution but not a CWA-presolution (E(_3,b) unjustified).
    #[test]
    fn universal_but_unjustified_is_not_cwa_solution() {
        let d = example_2_1();
        let s = s_star();
        let t = parse_instance("E(a,b). E(_3,b). F(a,_1). G(_1,_2).").unwrap();
        assert!(is_universal_solution(&d, &s, &t, &budget()).unwrap());
        assert_eq!(
            is_cwa_solution(&d, &s, &t, &budget(), &limits()).unwrap(),
            Some(false)
        );
    }

    /// Theorem 5.1 on Example 2.1: the core (= T₃ up to renaming) is a
    /// CWA-solution, and it is the minimal one.
    #[test]
    fn core_is_the_minimal_cwa_solution() {
        let d = example_2_1();
        let s = s_star();
        let c = core_solution(&d, &s, &budget()).unwrap();
        assert!(isomorphic(&c, &t3()));
        assert_eq!(
            is_cwa_solution(&d, &s, &c, &budget(), &limits()).unwrap(),
            Some(true)
        );
        assert!(is_minimal_cwa_solution(&d, &s, &c, &budget()).unwrap());
        assert!(!is_minimal_cwa_solution(&d, &s, &t2(), &budget()).unwrap());
    }

    #[test]
    fn governed_checks_match_ungoverned_when_unlimited() {
        let d = example_2_1();
        let s = s_star();
        let gov = Governor::unlimited();
        assert!(is_universal_solution_governed(&d, &s, &t2(), &budget(), &gov).unwrap());
        assert_eq!(
            is_cwa_solution_governed(&d, &s, &t2(), &budget(), &limits(), &gov).unwrap(),
            Some(true)
        );
        let core = core_solution_governed(&d, &s, &budget(), &gov).unwrap();
        assert!(core.is_minimal());
        assert!(isomorphic(&core.instance, &t3()));
    }

    #[test]
    fn tripped_governor_degrades_gracefully() {
        let d = example_2_1();
        let s = s_star();
        // Exhausted fuel: the solution checks report the interrupt...
        let gov = Governor::unlimited().with_fuel(0);
        assert!(matches!(
            is_cwa_solution_governed(&d, &s, &t2(), &budget(), &limits(), &gov),
            Err(ChaseError::Interrupted(_))
        ));
        // ...while the core degrades to a sound, possibly-non-minimal
        // universal solution rather than failing.
        let gov = Governor::unlimited().with_fuel(0);
        let core = core_solution_governed(&d, &s, &budget(), &gov).unwrap();
        assert!(!core.is_minimal());
        assert!(is_universal_solution(&d, &s, &core.instance, &budget()).unwrap());
    }

    #[test]
    fn existence_tracks_chase_success() {
        let d = example_2_1();
        assert!(cwa_solution_exists(&d, &s_star(), &budget()).unwrap());
        // A failing setting: key conflict on constants.
        let bad = parse_setting(
            "source { P/2 }
             target { F/2 }
             st { P(x,y) -> F(x,y); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a,b). P(a,c).").unwrap();
        assert!(!cwa_solution_exists(&bad, &s, &budget()).unwrap());
    }

    #[test]
    fn homomorphic_image_relation() {
        // T₃ is a homomorphic image of T₂ (fold the extra E-nulls onto b).
        assert!(is_homomorphic_image_of(&t3(), &t2()));
        // But T₂ is not an image of T₃ (images cannot grow).
        assert!(!is_homomorphic_image_of(&t2(), &t3()));
    }

    #[test]
    fn ground_image_check_is_equality() {
        let a = parse_instance("E(a,b).").unwrap();
        let b = parse_instance("E(a,b).").unwrap();
        assert!(is_homomorphic_image_of(&b, &a));
        let c = parse_instance("E(a,c).").unwrap();
        assert!(!is_homomorphic_image_of(&c, &a));
    }
}
