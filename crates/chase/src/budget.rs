//! Step/size budgets for chase procedures.
//!
//! General settings can make any chase run forever (the paper proves
//! Existence-of-(CWA-)Solutions undecidable via exactly such settings,
//! Theorem 6.2), so every chase here takes an explicit budget and reports
//! exceeding it as a distinct outcome rather than diverging.

/// Limits on a chase run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChaseBudget {
    /// Maximum number of chase steps (tgd applications + egd applications).
    pub max_steps: usize,
    /// Maximum number of atoms in the evolving instance.
    pub max_atoms: usize,
}

impl ChaseBudget {
    pub fn new(max_steps: usize, max_atoms: usize) -> ChaseBudget {
        ChaseBudget {
            max_steps,
            max_atoms,
        }
    }

    /// A small budget for quickly probing (non-)termination.
    pub fn probe() -> ChaseBudget {
        ChaseBudget::new(400, 8_000)
    }
}

impl Default for ChaseBudget {
    fn default() -> ChaseBudget {
        ChaseBudget::new(100_000, 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_generous() {
        let b = ChaseBudget::default();
        assert!(b.max_steps >= 10_000);
        assert!(b.max_atoms >= b.max_steps);
    }

    #[test]
    fn probe_is_small() {
        assert!(ChaseBudget::probe().max_steps < ChaseBudget::default().max_steps);
    }
}
