//! Step/size budgets for chase procedures.
//!
//! General settings can make any chase run forever (the paper proves
//! Existence-of-(CWA-)Solutions undecidable via exactly such settings,
//! Theorem 6.2), so every chase here takes an explicit budget and reports
//! exceeding it as a distinct outcome rather than diverging.
//!
//! Step and atom limits are enforced *exactly* (the historical
//! `BudgetExceeded` contract). A budget may additionally carry a
//! wall-clock deadline and a cooperative cancel flag; those are enforced
//! through a [`dex_core::Governor`] built by [`ChaseBudget::governor`]
//! and surface as `Interrupted` outcomes.

use dex_core::govern::{Clock, Governor};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Limits on a chase run.
#[derive(Clone, Debug, Default)]
pub struct ChaseLimitsExt {
    /// Optional wall-clock deadline for the whole run.
    pub deadline: Option<Duration>,
    /// Optional cooperative cancel flag (raised by another thread).
    pub cancel: Option<Arc<AtomicBool>>,
}

/// Limits on a chase run.
#[derive(Clone, Debug)]
pub struct ChaseBudget {
    /// Maximum number of chase steps (tgd applications + egd applications).
    pub max_steps: usize,
    /// Maximum number of atoms in the evolving instance.
    pub max_atoms: usize,
    /// Optional deadline/cancellation, defaulting to none.
    pub ext: ChaseLimitsExt,
}

impl ChaseBudget {
    pub fn new(max_steps: usize, max_atoms: usize) -> ChaseBudget {
        ChaseBudget {
            max_steps,
            max_atoms,
            ext: ChaseLimitsExt::default(),
        }
    }

    /// A small budget for quickly probing (non-)termination.
    pub fn probe() -> ChaseBudget {
        ChaseBudget::new(400, 8_000)
    }

    /// Adds a wall-clock deadline (counted from when the chase starts).
    pub fn with_deadline(mut self, deadline: Duration) -> ChaseBudget {
        self.ext.deadline = Some(deadline);
        self
    }

    /// Adds a cooperative cancel flag.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> ChaseBudget {
        self.ext.cancel = Some(cancel);
        self
    }

    /// Builds the [`Governor`] enforcing this budget's deadline and
    /// cancel flag on `clock` (the deadline countdown starts now). Step
    /// and atom limits stay with the chase drivers, which enforce them
    /// exactly rather than amortized.
    pub fn governor(&self, clock: &Clock) -> Governor {
        let mut gov = Governor::with_clock_now(clock.clone());
        if let Some(d) = self.ext.deadline {
            gov = gov.with_deadline(d);
        }
        if let Some(c) = &self.ext.cancel {
            gov = gov.with_cancel(Arc::clone(c));
        }
        gov
    }
}

impl Default for ChaseBudget {
    fn default() -> ChaseBudget {
        ChaseBudget::new(100_000, 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::govern::InterruptReason;
    use std::sync::atomic::Ordering;

    #[test]
    fn default_is_generous() {
        let b = ChaseBudget::default();
        assert!(b.max_steps >= 10_000);
        assert!(b.max_atoms >= b.max_steps);
        assert!(b.ext.deadline.is_none() && b.ext.cancel.is_none());
    }

    #[test]
    fn probe_is_small() {
        assert!(ChaseBudget::probe().max_steps < ChaseBudget::default().max_steps);
    }

    #[test]
    fn governor_carries_deadline_and_cancel() {
        let (clock, mock) = Clock::mock();
        let flag = Arc::new(AtomicBool::new(false));
        let b = ChaseBudget::default()
            .with_deadline(Duration::from_millis(5))
            .with_cancel(Arc::clone(&flag));
        let gov = b.governor(&clock);
        gov.force_check().unwrap();
        mock.advance(Duration::from_millis(6));
        assert_eq!(
            gov.force_check().unwrap_err().reason,
            InterruptReason::Deadline
        );
        let gov2 = b.governor(&clock);
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            gov2.force_check().unwrap_err().reason,
            InterruptReason::Cancelled
        );
    }

    #[test]
    fn governor_without_limits_passes() {
        let gov = ChaseBudget::probe().governor(&Clock::real());
        for _ in 0..5000 {
            gov.check().unwrap();
        }
    }
}
