//! Provenance for chase-derived atoms: which dependency, under which
//! trigger valuation, put each atom into the instance — the paper's
//! justification-by-trigger notion (§3) made inspectable, and the
//! justification *graph* incremental maintenance retracts over.
//!
//! A [`Provenance`] maps every atom of the chase result to its recorded
//! justifications: [`Derivation::Source`] (the atom was in the σ-part)
//! and/or [`Derivation::Tgd`] entries with the dependency name, the
//! trigger valuation `ū ∪ v̄ ∪ z̄`, and the instantiated body atoms
//! (the premises). *All* justifications are kept — an atom re-derived
//! by a second trigger records both, so a deletion that kills one chain
//! does not over-retract an atom another chain still supports.
//!
//! Egd merges rewrite atoms in place, so the map is re-keyed through
//! the same `loser ↦ winner` endomorphism the instance applies. A
//! justification whose atom, premises, or valuation were rewritten is
//! *conditional* on that merge: the merge id is pushed onto the
//! justification's `merge_deps`, and [`Provenance::retract_sources`]
//! kills such justifications when the merge itself dies (union-find
//! merges are not invertible, so retraction over-deletes the merge's
//! value cone and lets the chase re-derive the survivors).
//!
//! [`Provenance::explain`] walks premises transitively and returns a
//! [`JustificationChain`] whose leaves are source atoms;
//! [`Provenance::verify_justified`] is the CWA-presolution
//! cross-check: *every* atom of a claimed presolution must carry a
//! recorded justification.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use dex_core::{Atom, Instance, Value};
use dex_obs::JsonValue;

/// How one atom got into the chase result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Derivation {
    /// Present in the source (σ-part) before the chase ran.
    Source,
    /// Inserted by firing dependency `dep` under `valuation`.
    Tgd {
        /// The dependency's name (`d2`, …).
        dep: String,
        /// Its index in the setting's `st_tgds ++ t_tgds` order.
        dep_index: usize,
        /// The full trigger valuation: frontier, body-only and
        /// existential variables, in variable-name order of recording.
        valuation: Vec<(String, Value)>,
        /// The instantiated body atoms (empty for FO bodies, which
        /// have no canonical atom decomposition).
        premises: Vec<Atom>,
    },
}

impl Derivation {
    pub fn is_source(&self) -> bool {
        matches!(self, Derivation::Source)
    }
}

/// One recorded justification of an atom: a derivation plus the egd
/// merges that rewrote it after it was recorded (the justification is
/// conditional on those merges still being justified themselves).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Just {
    derivation: Derivation,
    /// Ids of [`MergeRecord`]s that rewrote this justification's atom,
    /// premises, or valuation.
    merge_deps: Vec<u64>,
}

impl Just {
    fn source() -> Just {
        Just {
            derivation: Derivation::Source,
            merge_deps: Vec::new(),
        }
    }
}

/// An egd merge recorded during the run, in application order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeRecord {
    /// The egd's name.
    pub dep: String,
    /// The value rewritten away (always a null).
    pub loser: Value,
    /// The value it was rewritten to.
    pub winner: Value,
    /// Stable id (ids survive retraction; indices would not).
    id: u64,
    /// The instantiated egd-body atoms of the violating trigger, as
    /// named *after* this merge (and re-keyed by later merges) — the
    /// premises whose continued support keeps the merge justified.
    premises: Vec<Atom>,
    /// Ids of later merges that re-keyed `premises`.
    merge_deps: Vec<u64>,
}

impl MergeRecord {
    /// The instantiated egd-body atoms of the violating trigger.
    pub fn premises(&self) -> &[Atom] {
        &self.premises
    }
}

/// Per-atom derivations for one chase run.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    how: HashMap<Atom, Vec<Just>>,
    merges: Vec<MergeRecord>,
    next_merge_id: u64,
}

impl Provenance {
    /// Seeds the map: every source atom derives as [`Derivation::Source`].
    pub fn for_source(source: &Instance) -> Provenance {
        Provenance {
            how: source.atoms().map(|a| (a, vec![Just::source()])).collect(),
            merges: Vec::new(),
            next_merge_id: 0,
        }
    }

    /// Records an atom as (now also) present in the source — used when
    /// incremental maintenance inserts new source atoms into a prior
    /// chase result.
    pub fn record_source(&mut self, atom: Atom) {
        let justs = self.how.entry(atom).or_default();
        if !justs.iter().any(|j| j.derivation.is_source()) {
            justs.push(Just::source());
        }
    }

    /// Records a tgd-derived atom. Every distinct derivation is kept
    /// (the first recorded one is what [`Provenance::derivation`] and
    /// [`Provenance::explain`] report); re-recording an identical
    /// derivation is a no-op.
    pub fn record_derived(
        &mut self,
        atom: Atom,
        dep: &str,
        dep_index: usize,
        valuation: &[(String, Value)],
        premises: &[Atom],
    ) {
        let derivation = Derivation::Tgd {
            dep: dep.to_string(),
            dep_index,
            valuation: valuation.to_vec(),
            premises: premises.to_vec(),
        };
        let justs = self.how.entry(atom).or_default();
        if !justs.iter().any(|j| j.derivation == derivation) {
            justs.push(Just {
                derivation,
                merge_deps: Vec::new(),
            });
        }
    }

    /// Records an egd merge (with the violating trigger's instantiated
    /// body atoms as `premises`) and re-keys every derivation through
    /// the `loser ↦ winner` endomorphism, exactly as
    /// `Instance::merge_value` rewrites the instance's rows. Every
    /// justification the rewrite touches becomes conditional on this
    /// merge (its id lands in the justification's `merge_deps`).
    pub fn record_merge(&mut self, dep: &str, loser: Value, winner: Value, premises: &[Atom]) {
        let id = self.next_merge_id;
        self.next_merge_id += 1;
        let subst = |v: Value| if v == loser { winner } else { v };
        let old = std::mem::take(&mut self.how);
        for (atom, mut justs) in old {
            let new_atom = atom.map_values(subst);
            let atom_rekeyed = new_atom != atom;
            for j in &mut justs {
                let mut touched = atom_rekeyed;
                if let Derivation::Tgd {
                    premises,
                    valuation,
                    ..
                } = &mut j.derivation
                {
                    for p in premises.iter_mut() {
                        let np = p.map_values(subst);
                        if np != *p {
                            *p = np;
                            touched = true;
                        }
                    }
                    for (_, v) in valuation.iter_mut() {
                        let nv = subst(*v);
                        if nv != *v {
                            *v = nv;
                            touched = true;
                        }
                    }
                }
                if touched {
                    j.merge_deps.push(id);
                }
            }
            // Two atoms can collapse into one; the surviving atom keeps
            // every distinct justification of both.
            let slot = self.how.entry(new_atom).or_default();
            for j in justs {
                if !slot.contains(&j) {
                    slot.push(j);
                }
            }
        }
        for m in &mut self.merges {
            let mut touched = false;
            for p in m.premises.iter_mut() {
                let np = p.map_values(subst);
                if np != *p {
                    *p = np;
                    touched = true;
                }
            }
            if touched {
                m.merge_deps.push(id);
            }
        }
        self.merges.push(MergeRecord {
            dep: dep.to_string(),
            loser,
            winner,
            id,
            // The trigger's own atoms are rewritten by the merge too.
            premises: premises.iter().map(|p| p.map_values(subst)).collect(),
            merge_deps: Vec::new(),
        });
    }

    /// Number of atoms with a recorded derivation.
    pub fn len(&self) -> usize {
        self.how.len()
    }

    pub fn is_empty(&self) -> bool {
        self.how.is_empty()
    }

    /// The egd merges applied and still justified, in order.
    pub fn merges(&self) -> &[MergeRecord] {
        &self.merges
    }

    /// The first recorded derivation of `atom`, if any.
    pub fn derivation(&self, atom: &Atom) -> Option<&Derivation> {
        self.how
            .get(atom)
            .and_then(|js| js.first())
            .map(|j| &j.derivation)
    }

    /// Every recorded derivation of `atom`, in recording order.
    pub fn derivations(&self, atom: &Atom) -> impl Iterator<Item = &Derivation> {
        self.how
            .get(atom)
            .into_iter()
            .flat_map(|js| js.iter().map(|j| &j.derivation))
    }

    /// The number of recorded justifications of `atom` (its support
    /// count in the counting/DRed sense).
    pub fn support(&self, atom: &Atom) -> usize {
        self.how.get(atom).map_or(0, Vec::len)
    }

    /// The justification chain of `atom`: the atom's own (first)
    /// derivation followed by those of its premises, transitively,
    /// ending in source atoms. `None` if the atom — or any premise
    /// along the way — has no recorded derivation (which
    /// [`Provenance::verify_justified`] treats as a broken
    /// justification).
    pub fn explain(&self, atom: &Atom) -> Option<JustificationChain> {
        let mut steps = Vec::new();
        let mut seen: HashSet<Atom> = HashSet::new();
        let mut queue: VecDeque<Atom> = VecDeque::new();
        queue.push_back(atom.clone());
        while let Some(a) = queue.pop_front() {
            if !seen.insert(a.clone()) {
                continue;
            }
            let derivation = self.derivation(&a)?.clone();
            if let Derivation::Tgd { premises, .. } = &derivation {
                queue.extend(premises.iter().cloned());
            }
            steps.push(ChainStep {
                atom: a,
                derivation,
            });
        }
        Some(JustificationChain { steps })
    }

    /// The presolution cross-check: every atom of `claimed` must have a
    /// complete justification chain. Returns the first offender.
    pub fn verify_justified(&self, claimed: &Instance) -> Result<(), String> {
        for atom in claimed.atoms() {
            if self.explain(&atom).is_none() {
                return Err(format!("no recorded justification for {atom}"));
            }
        }
        Ok(())
    }

    /// DRed-style deletion propagation: retracts the `deleted` source
    /// atoms and returns every atom that loses its last justification —
    /// the caller removes exactly those atoms from the instance and
    /// re-fires triggers whose heads they satisfied.
    ///
    /// Aliveness is a *least* fixpoint grounded in the surviving source
    /// atoms (a cycle of atoms justifying each other with no external
    /// support dies — the classical counting-algorithm pitfall). Merges
    /// are handled conservatively, since they are not invertible:
    /// a merge becomes *suspect* when any of its trigger premises dies
    /// or loses any justification (or a merge it depends on does), and
    /// then (a) every justification conditional on it is killed, and
    /// (b) every non-source atom containing the merge's (resolved)
    /// winner is over-deleted — re-derivation re-fires and re-merges
    /// whatever still holds. This is the documented egd over-delete
    /// boundary of incremental maintenance.
    pub fn retract_sources(&mut self, deleted: &[Atom]) -> Vec<Atom> {
        let deleted: HashSet<Atom> = deleted.iter().cloned().collect();
        let mut suspect: HashSet<u64> = HashSet::new();
        loop {
            let alive = self.alive_fixpoint(&deleted, &suspect);
            // Grow the suspect-merge set against this aliveness; if it
            // grows, aliveness must be recomputed (monotone, so the
            // outer loop terminates after at most |merges| rounds).
            let mut grew = false;
            loop {
                let mut inner = false;
                for m in &self.merges {
                    if suspect.contains(&m.id) {
                        continue;
                    }
                    let bad = m.merge_deps.iter().any(|d| suspect.contains(d))
                        || m.premises.iter().any(|p| {
                            !alive.contains(p) || self.lost_support(p, &deleted, &suspect, &alive)
                        });
                    if bad {
                        suspect.insert(m.id);
                        inner = true;
                        grew = true;
                    }
                }
                if !inner {
                    break;
                }
            }
            if !grew {
                return self.apply_retraction(&deleted, &suspect, &alive);
            }
        }
    }

    /// True iff the justification is not structurally dead: not a
    /// deleted source entry and not conditional on a suspect merge.
    /// (Premise aliveness is the fixpoint's job, not this check's.)
    fn usable(j: &Just, atom: &Atom, deleted: &HashSet<Atom>, suspect: &HashSet<u64>) -> bool {
        if j.merge_deps.iter().any(|d| suspect.contains(d)) {
            return false;
        }
        match &j.derivation {
            Derivation::Source => !deleted.contains(atom),
            Derivation::Tgd { .. } => true,
        }
    }

    /// True iff some justification of `p` is dead under the current
    /// retraction state — `p` may still be alive, but a merge whose
    /// trigger premise lost *any* support is treated as suspect.
    fn lost_support(
        &self,
        p: &Atom,
        deleted: &HashSet<Atom>,
        suspect: &HashSet<u64>,
        alive: &HashSet<Atom>,
    ) -> bool {
        self.how.get(p).is_none_or(|justs| {
            justs.iter().any(|j| {
                !Self::usable(j, p, deleted, suspect)
                    || match &j.derivation {
                        Derivation::Source => false,
                        Derivation::Tgd { premises, .. } => {
                            premises.iter().any(|q| !alive.contains(q))
                        }
                    }
            })
        })
    }

    /// The values live rows inherited from suspect merges: each suspect
    /// winner resolved through the later merges that rewrote it.
    fn tainted_values(&self, suspect: &HashSet<u64>) -> HashSet<Value> {
        let mut out = HashSet::new();
        for (i, m) in self.merges.iter().enumerate() {
            if !suspect.contains(&m.id) {
                continue;
            }
            let mut w = m.winner;
            for later in &self.merges[i + 1..] {
                if later.loser == w {
                    w = later.winner;
                }
            }
            out.insert(w);
        }
        out
    }

    /// Least-fixpoint aliveness: an atom is alive iff it has a usable
    /// Source justification, or a usable tgd justification whose
    /// premises are all alive — and it is not over-deleted by merge
    /// taint. FO-derived justifications (empty premise list) count as
    /// unconditionally satisfied; callers that maintain deletions fall
    /// back to a full re-chase when FO bodies are in play.
    fn alive_fixpoint(&self, deleted: &HashSet<Atom>, suspect: &HashSet<u64>) -> HashSet<Atom> {
        let tainted = self.tainted_values(suspect);
        let source_alive = |atom: &Atom, justs: &[Just]| {
            justs
                .iter()
                .any(|j| j.derivation.is_source() && Self::usable(j, atom, deleted, suspect))
        };
        let mut alive: HashSet<Atom> = HashSet::new();
        let mut queue: VecDeque<&Atom> = VecDeque::new();
        // Pending tgd justifications: (atom, #premises not yet alive).
        struct Pending<'p> {
            atom: &'p Atom,
            missing: usize,
        }
        let mut pending: Vec<Pending> = Vec::new();
        // premise -> indices into `pending` waiting on it.
        let mut waiters: HashMap<&Atom, Vec<usize>> = HashMap::new();
        for (atom, justs) in &self.how {
            if source_alive(atom, justs) {
                alive.insert(atom.clone());
                queue.push_back(atom);
                continue;
            }
            // Merge taint over-deletes derived atoms outright.
            if atom.args.iter().any(|v| tainted.contains(v)) {
                continue;
            }
            for j in justs {
                if !Self::usable(j, atom, deleted, suspect) {
                    continue;
                }
                let Derivation::Tgd { premises, .. } = &j.derivation else {
                    continue;
                };
                // Register waiters only for premises not alive *now*:
                // an already-alive premise may still be queued for its
                // own drain, and decrementing for it again would count
                // it twice.
                let missing: Vec<&Atom> = premises.iter().filter(|p| !alive.contains(*p)).collect();
                if missing.is_empty() {
                    alive.insert(atom.clone());
                    queue.push_back(atom);
                    break;
                }
                let idx = pending.len();
                pending.push(Pending {
                    atom,
                    missing: missing.len(),
                });
                for p in missing {
                    waiters.entry(p).or_default().push(idx);
                }
            }
        }
        while let Some(a) = queue.pop_front() {
            let Some(waiting) = waiters.get(a) else {
                continue;
            };
            for &wi in waiting {
                let w = &mut pending[wi];
                if alive.contains(w.atom) {
                    continue;
                }
                w.missing -= 1;
                if w.missing == 0 {
                    alive.insert(w.atom.clone());
                    queue.push_back(w.atom);
                }
            }
        }
        alive
    }

    /// Drops everything the retraction killed: dead atoms, their
    /// justifications, dead justifications of surviving atoms, and the
    /// suspect merge records. Returns the removed atoms.
    fn apply_retraction(
        &mut self,
        deleted: &HashSet<Atom>,
        suspect: &HashSet<u64>,
        alive: &HashSet<Atom>,
    ) -> Vec<Atom> {
        let removed: Vec<Atom> = self
            .how
            .keys()
            .filter(|a| !alive.contains(*a))
            .cloned()
            .collect();
        for a in &removed {
            self.how.remove(a);
        }
        for (atom, justs) in &mut self.how {
            justs.retain(|j| {
                Self::usable(j, atom, deleted, suspect)
                    && match &j.derivation {
                        Derivation::Source => true,
                        Derivation::Tgd { premises, .. } => {
                            premises.iter().all(|p| alive.contains(p))
                        }
                    }
            });
            debug_assert!(
                !justs.is_empty(),
                "surviving atom {atom} retained no justification"
            );
        }
        self.merges.retain(|m| !suspect.contains(&m.id));
        removed
    }
}

/// One step of a justification chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStep {
    pub atom: Atom,
    pub derivation: Derivation,
}

/// The transitive justification of one atom: `steps[0]` is the atom
/// itself; premises follow in breadth-first order; every leaf is a
/// [`Derivation::Source`] step (guaranteed by construction — a missing
/// link makes [`Provenance::explain`] return `None` instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JustificationChain {
    pub steps: Vec<ChainStep>,
}

impl JustificationChain {
    /// True iff every premise-less step is a source atom — i.e. the
    /// chain bottoms out in the σ-part rather than in an FO body
    /// (whose premises are not decomposable into atoms).
    pub fn ends_in_sources(&self) -> bool {
        self.steps.iter().all(|s| match &s.derivation {
            Derivation::Source => true,
            Derivation::Tgd { premises, .. } => !premises.is_empty(),
        })
    }

    /// The source atoms the chain bottoms out in.
    pub fn source_atoms(&self) -> Vec<&Atom> {
        self.steps
            .iter()
            .filter(|s| s.derivation.is_source())
            .map(|s| &s.atom)
            .collect()
    }

    /// The chain as JSON: an array of step objects.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.steps
                .iter()
                .map(|s| {
                    let mut o = JsonValue::obj().with("atom", JsonValue::str(s.atom.to_string()));
                    match &s.derivation {
                        Derivation::Source => {
                            o.push("by", JsonValue::str("source"));
                        }
                        Derivation::Tgd {
                            dep,
                            dep_index,
                            valuation,
                            premises,
                        } => {
                            o.push("by", JsonValue::str(dep.clone()));
                            o.push("dep_index", JsonValue::uint(*dep_index as u64));
                            o.push(
                                "valuation",
                                JsonValue::Obj(
                                    valuation
                                        .iter()
                                        .map(|(var, v)| {
                                            (var.clone(), JsonValue::str(v.to_string()))
                                        })
                                        .collect(),
                                ),
                            );
                            o.push(
                                "premises",
                                JsonValue::Arr(
                                    premises
                                        .iter()
                                        .map(|p| JsonValue::str(p.to_string()))
                                        .collect(),
                                ),
                            );
                        }
                    }
                    o
                })
                .collect(),
        )
    }
}

impl fmt::Display for JustificationChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            match &s.derivation {
                Derivation::Source => write!(f, "{} <- source", s.atom)?,
                Derivation::Tgd { dep, premises, .. } => {
                    write!(f, "{} <- {}(", s.atom, dep)?;
                    for (j, p) in premises.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, args: &[Value]) -> Atom {
        Atom::of(rel, args.to_vec())
    }

    fn konst(s: &str) -> Value {
        Value::konst(s)
    }

    #[test]
    fn explain_walks_premises_to_sources() {
        let a = atom("E", &[konst("a"), konst("b")]);
        let source = Instance::from_atoms([a.clone()]);
        let mut p = Provenance::for_source(&source);
        let t = atom("T", &[konst("a"), konst("b")]);
        p.record_derived(
            t.clone(),
            "d1",
            0,
            &[("x".into(), konst("a")), ("y".into(), konst("b"))],
            std::slice::from_ref(&a),
        );
        let chain = p.explain(&t).unwrap();
        assert_eq!(chain.steps.len(), 2);
        assert_eq!(chain.steps[0].atom, t);
        assert!(chain.ends_in_sources());
        assert_eq!(chain.source_atoms(), vec![&a]);
        // The chain renders and serialises.
        assert!(chain.to_string().contains("<- d1"));
        dex_obs::parse(&chain.to_json().dump()).unwrap();
    }

    #[test]
    fn explain_fails_on_missing_links() {
        let p = Provenance::default();
        assert!(p.explain(&atom("T", &[konst("a")])).is_none());
        let claimed = Instance::from_atoms([atom("T", &[konst("a")])]);
        assert!(p.verify_justified(&claimed).is_err());
    }

    #[test]
    fn merges_rekey_atoms_and_premises() {
        let n0 = Value::null(0);
        let n1 = Value::null(1);
        let src = atom("M", &[konst("a")]);
        let source = Instance::from_atoms([src.clone()]);
        let mut p = Provenance::for_source(&source);
        let f0 = atom("F", &[konst("a"), n0]);
        let f1 = atom("F", &[konst("a"), n1]);
        p.record_derived(f0.clone(), "d2", 1, &[("z".into(), n0)], &[src.clone()]);
        p.record_derived(f1.clone(), "d2", 1, &[("z".into(), n1)], &[src.clone()]);
        let g = atom("G", &[n1]);
        p.record_derived(g.clone(), "d3", 2, &[("y".into(), n1)], &[f1.clone()]);
        // d4 merges ⊥1 into ⊥0: F-atoms collapse, G(⊥1) becomes G(⊥0).
        p.record_merge("d4", n1, n0, &[f0.clone(), f1.clone()]);
        assert_eq!(p.merges().len(), 1);
        // The merge record's own premises are post-merge names.
        assert_eq!(p.merges()[0].premises(), &[f0.clone(), f0.clone()][..]);
        assert!(p.derivation(&f1).is_none());
        assert!(p.derivation(&f0).is_some());
        let g_after = atom("G", &[n0]);
        let chain = p.explain(&g_after).unwrap();
        assert!(chain.ends_in_sources());
        // The premise was re-keyed too: it now names F(a,⊥0).
        match &chain.steps[0].derivation {
            Derivation::Tgd { premises, .. } => assert_eq!(premises, &[f0]),
            other => panic!("unexpected derivation {other:?}"),
        }
    }

    #[test]
    fn alternate_justifications_are_all_recorded() {
        let s1 = atom("P", &[konst("a")]);
        let s2 = atom("Q", &[konst("a")]);
        let source = Instance::from_atoms([s1.clone(), s2.clone()]);
        let mut p = Provenance::for_source(&source);
        let t = atom("T", &[konst("a")]);
        p.record_derived(
            t.clone(),
            "d1",
            0,
            &[("x".into(), konst("a"))],
            &[s1.clone()],
        );
        p.record_derived(
            t.clone(),
            "d2",
            1,
            &[("x".into(), konst("a"))],
            &[s2.clone()],
        );
        // Identical re-recording is a no-op.
        p.record_derived(
            t.clone(),
            "d2",
            1,
            &[("x".into(), konst("a"))],
            &[s2.clone()],
        );
        assert_eq!(p.support(&t), 2);
        assert_eq!(p.derivations(&t).count(), 2);
        // The first derivation is still what explain() reports.
        match p.derivation(&t).unwrap() {
            Derivation::Tgd { dep, .. } => assert_eq!(dep, "d1"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn retraction_spares_atoms_rederived_via_second_chain() {
        // The regression case for first-write-wins: T(a) has chains
        // through P(a) and through Q(a); deleting P must not kill it.
        let s1 = atom("P", &[konst("a")]);
        let s2 = atom("Q", &[konst("a")]);
        let source = Instance::from_atoms([s1.clone(), s2.clone()]);
        let mut p = Provenance::for_source(&source);
        let t = atom("T", &[konst("a")]);
        p.record_derived(
            t.clone(),
            "d1",
            0,
            &[("x".into(), konst("a"))],
            &[s1.clone()],
        );
        p.record_derived(
            t.clone(),
            "d2",
            1,
            &[("x".into(), konst("a"))],
            &[s2.clone()],
        );
        let u = atom("U", &[konst("a")]);
        p.record_derived(
            u.clone(),
            "d3",
            2,
            &[("x".into(), konst("a"))],
            &[t.clone()],
        );
        let removed = p.retract_sources(std::slice::from_ref(&s1));
        assert_eq!(removed, vec![s1.clone()]);
        assert_eq!(p.support(&t), 1);
        assert!(p.explain(&u).unwrap().ends_in_sources());
        // Deleting the second chain now kills the whole cone.
        let mut removed = p.retract_sources(std::slice::from_ref(&s2));
        removed.sort();
        let mut expect = vec![s2, t.clone(), u.clone()];
        expect.sort();
        assert_eq!(removed, expect);
        assert!(p.derivation(&t).is_none());
    }

    #[test]
    fn retraction_kills_self_supporting_cycles() {
        // A and B justify each other; the only external support is S.
        // Deleting S must kill both (least-fixpoint aliveness — a
        // counting scheme that only decrements would keep the cycle).
        let s = atom("S", &[konst("a")]);
        let source = Instance::from_atoms([s.clone()]);
        let mut p = Provenance::for_source(&source);
        let a = atom("A", &[konst("a")]);
        let b = atom("B", &[konst("a")]);
        p.record_derived(
            a.clone(),
            "d1",
            0,
            &[("x".into(), konst("a"))],
            &[s.clone()],
        );
        p.record_derived(
            b.clone(),
            "d2",
            1,
            &[("x".into(), konst("a"))],
            &[a.clone()],
        );
        p.record_derived(
            a.clone(),
            "d3",
            2,
            &[("x".into(), konst("a"))],
            &[b.clone()],
        );
        assert_eq!(p.support(&a), 2);
        let mut removed = p.retract_sources(std::slice::from_ref(&s));
        removed.sort();
        let mut expect = vec![s, a, b];
        expect.sort();
        assert_eq!(removed, expect);
    }

    #[test]
    fn dead_merge_over_deletes_its_winner_cone() {
        // P(a) -> ∃z F(a,z) gives F(a,⊥1); Q(a,c) -> F(a,c); the key
        // egd merges ⊥1 ↦ c. Deleting Q(a,c) kills the merge, so the
        // rekeyed F(a,c) must be over-deleted (a re-chase would have
        // F(a,⊥) — keeping F(a,c) would be unsound).
        let n1 = Value::null(1);
        let pa = atom("P", &[konst("a")]);
        let qac = atom("Q", &[konst("a"), konst("c")]);
        let source = Instance::from_atoms([pa.clone(), qac.clone()]);
        let mut p = Provenance::for_source(&source);
        let f_null = atom("F", &[konst("a"), n1]);
        let f_c = atom("F", &[konst("a"), konst("c")]);
        p.record_derived(
            f_null.clone(),
            "d1",
            0,
            &[("x".into(), konst("a")), ("z".into(), n1)],
            &[pa.clone()],
        );
        p.record_derived(
            f_c.clone(),
            "d2",
            1,
            &[("x".into(), konst("a")), ("y".into(), konst("c"))],
            &[qac.clone()],
        );
        p.record_merge("e1", n1, konst("c"), &[f_null.clone(), f_c.clone()]);
        // Post-merge, F(a,c) carries both the Q-chain and the rekeyed
        // P-chain.
        assert_eq!(p.support(&f_c), 2);
        let mut removed = p.retract_sources(std::slice::from_ref(&qac));
        removed.sort();
        let mut expect = vec![qac, f_c.clone()];
        expect.sort();
        assert_eq!(removed, expect);
        // The dead merge is dropped from the record.
        assert!(p.merges().is_empty());
        assert!(p.derivation(&f_c).is_none());
    }

    #[test]
    fn unrelated_deletions_leave_merges_intact() {
        let n1 = Value::null(1);
        let pa = atom("P", &[konst("a")]);
        let rb = atom("R", &[konst("b")]);
        let qac = atom("Q", &[konst("a"), konst("c")]);
        let source = Instance::from_atoms([pa.clone(), rb.clone(), qac.clone()]);
        let mut p = Provenance::for_source(&source);
        let f_null = atom("F", &[konst("a"), n1]);
        let f_c = atom("F", &[konst("a"), konst("c")]);
        let g_b = atom("G", &[konst("b")]);
        p.record_derived(
            f_null.clone(),
            "d1",
            0,
            &[("x".into(), konst("a")), ("z".into(), n1)],
            &[pa.clone()],
        );
        p.record_derived(
            f_c.clone(),
            "d2",
            1,
            &[("x".into(), konst("a")), ("y".into(), konst("c"))],
            &[qac.clone()],
        );
        p.record_merge("e1", n1, konst("c"), &[f_null, f_c.clone()]);
        p.record_derived(
            g_b.clone(),
            "d3",
            2,
            &[("x".into(), konst("b"))],
            &[rb.clone()],
        );
        let removed = p.retract_sources(std::slice::from_ref(&rb));
        let mut removed = removed;
        removed.sort();
        let mut expect = vec![rb, g_b];
        expect.sort();
        assert_eq!(removed, expect);
        assert_eq!(p.merges().len(), 1);
        assert_eq!(p.support(&f_c), 2);
    }
}
