//! Provenance for chase-derived atoms: which dependency, under which
//! trigger valuation, put each atom into the instance — the paper's
//! justification-by-trigger notion (§3) made inspectable.
//!
//! A [`Provenance`] maps every atom of the chase result to a
//! [`Derivation`]: either [`Derivation::Source`] (the atom was in the
//! σ-part) or [`Derivation::Tgd`] with the dependency name, the
//! trigger valuation `ū ∪ v̄ ∪ z̄`, and the instantiated body atoms
//! (the premises). Egd merges rewrite atoms in place, so the map is
//! re-keyed through the same `loser ↦ winner` endomorphism the
//! instance applies — provenance survives merging because the
//! justifying trigger does (the head stays satisfied under the
//! homomorphism, cf. the engine's soundness argument).
//!
//! [`Provenance::explain`] walks premises transitively and returns a
//! [`JustificationChain`] whose leaves are source atoms;
//! [`Provenance::verify_justified`] is the CWA-presolution
//! cross-check: *every* atom of a claimed presolution must carry a
//! recorded justification.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use dex_core::{Atom, Instance, Value};
use dex_obs::JsonValue;

/// How one atom got into the chase result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Derivation {
    /// Present in the source (σ-part) before the chase ran.
    Source,
    /// Inserted by firing dependency `dep` under `valuation`.
    Tgd {
        /// The dependency's name (`d2`, …).
        dep: String,
        /// Its index in the setting's `st_tgds ++ t_tgds` order.
        dep_index: usize,
        /// The full trigger valuation: frontier, body-only and
        /// existential variables, in variable-name order of recording.
        valuation: Vec<(String, Value)>,
        /// The instantiated body atoms (empty for FO bodies, which
        /// have no canonical atom decomposition).
        premises: Vec<Atom>,
    },
}

impl Derivation {
    pub fn is_source(&self) -> bool {
        matches!(self, Derivation::Source)
    }
}

/// An egd merge recorded during the run, in application order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeRecord {
    /// The egd's name.
    pub dep: String,
    /// The value rewritten away (always a null).
    pub loser: Value,
    /// The value it was rewritten to.
    pub winner: Value,
}

/// Per-atom derivations for one chase run.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    how: HashMap<Atom, Derivation>,
    merges: Vec<MergeRecord>,
}

impl Provenance {
    /// Seeds the map: every source atom derives as [`Derivation::Source`].
    pub fn for_source(source: &Instance) -> Provenance {
        Provenance {
            how: source.atoms().map(|a| (a, Derivation::Source)).collect(),
            merges: Vec::new(),
        }
    }

    /// Records a tgd-derived atom. First derivation wins: an atom
    /// re-derivable by a later trigger keeps its original justification
    /// (matching the chase, which never re-inserts a present atom).
    pub fn record_derived(
        &mut self,
        atom: Atom,
        dep: &str,
        dep_index: usize,
        valuation: &[(String, Value)],
        premises: &[Atom],
    ) {
        self.how.entry(atom).or_insert_with(|| Derivation::Tgd {
            dep: dep.to_string(),
            dep_index,
            valuation: valuation.to_vec(),
            premises: premises.to_vec(),
        });
    }

    /// Records an egd merge and re-keys every derivation through the
    /// `loser ↦ winner` endomorphism, exactly as
    /// `Instance::merge_value` rewrites the instance's rows.
    pub fn record_merge(&mut self, dep: &str, loser: Value, winner: Value) {
        self.merges.push(MergeRecord {
            dep: dep.to_string(),
            loser,
            winner,
        });
        let subst = |v: Value| if v == loser { winner } else { v };
        let old = std::mem::take(&mut self.how);
        for (atom, mut derivation) in old {
            let atom = atom.map_values(subst);
            if let Derivation::Tgd {
                premises,
                valuation,
                ..
            } = &mut derivation
            {
                for p in premises.iter_mut() {
                    *p = p.map_values(subst);
                }
                for (_, v) in valuation.iter_mut() {
                    *v = subst(*v);
                }
            }
            // Two atoms can collapse into one; keep the first-recorded
            // derivation (either justifies the surviving atom).
            self.how.entry(atom).or_insert(derivation);
        }
    }

    /// Number of atoms with a recorded derivation.
    pub fn len(&self) -> usize {
        self.how.len()
    }

    pub fn is_empty(&self) -> bool {
        self.how.is_empty()
    }

    /// The egd merges applied, in order.
    pub fn merges(&self) -> &[MergeRecord] {
        &self.merges
    }

    /// The recorded derivation of `atom`, if any.
    pub fn derivation(&self, atom: &Atom) -> Option<&Derivation> {
        self.how.get(atom)
    }

    /// The justification chain of `atom`: the atom's own derivation
    /// followed by those of its premises, transitively, ending in
    /// source atoms. `None` if the atom — or any premise along the way
    /// — has no recorded derivation (which [`Provenance::verify_justified`]
    /// treats as a broken justification).
    pub fn explain(&self, atom: &Atom) -> Option<JustificationChain> {
        let mut steps = Vec::new();
        let mut seen: HashSet<Atom> = HashSet::new();
        let mut queue: VecDeque<Atom> = VecDeque::new();
        queue.push_back(atom.clone());
        while let Some(a) = queue.pop_front() {
            if !seen.insert(a.clone()) {
                continue;
            }
            let derivation = self.how.get(&a)?.clone();
            if let Derivation::Tgd { premises, .. } = &derivation {
                queue.extend(premises.iter().cloned());
            }
            steps.push(ChainStep {
                atom: a,
                derivation,
            });
        }
        Some(JustificationChain { steps })
    }

    /// The presolution cross-check: every atom of `claimed` must have a
    /// complete justification chain. Returns the first offender.
    pub fn verify_justified(&self, claimed: &Instance) -> Result<(), String> {
        for atom in claimed.atoms() {
            if self.explain(&atom).is_none() {
                return Err(format!("no recorded justification for {atom}"));
            }
        }
        Ok(())
    }
}

/// One step of a justification chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStep {
    pub atom: Atom,
    pub derivation: Derivation,
}

/// The transitive justification of one atom: `steps[0]` is the atom
/// itself; premises follow in breadth-first order; every leaf is a
/// [`Derivation::Source`] step (guaranteed by construction — a missing
/// link makes [`Provenance::explain`] return `None` instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JustificationChain {
    pub steps: Vec<ChainStep>,
}

impl JustificationChain {
    /// True iff every premise-less step is a source atom — i.e. the
    /// chain bottoms out in the σ-part rather than in an FO body
    /// (whose premises are not decomposable into atoms).
    pub fn ends_in_sources(&self) -> bool {
        self.steps.iter().all(|s| match &s.derivation {
            Derivation::Source => true,
            Derivation::Tgd { premises, .. } => !premises.is_empty(),
        })
    }

    /// The source atoms the chain bottoms out in.
    pub fn source_atoms(&self) -> Vec<&Atom> {
        self.steps
            .iter()
            .filter(|s| s.derivation.is_source())
            .map(|s| &s.atom)
            .collect()
    }

    /// The chain as JSON: an array of step objects.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.steps
                .iter()
                .map(|s| {
                    let mut o = JsonValue::obj().with("atom", JsonValue::str(s.atom.to_string()));
                    match &s.derivation {
                        Derivation::Source => {
                            o.push("by", JsonValue::str("source"));
                        }
                        Derivation::Tgd {
                            dep,
                            dep_index,
                            valuation,
                            premises,
                        } => {
                            o.push("by", JsonValue::str(dep.clone()));
                            o.push("dep_index", JsonValue::uint(*dep_index as u64));
                            o.push(
                                "valuation",
                                JsonValue::Obj(
                                    valuation
                                        .iter()
                                        .map(|(var, v)| {
                                            (var.clone(), JsonValue::str(v.to_string()))
                                        })
                                        .collect(),
                                ),
                            );
                            o.push(
                                "premises",
                                JsonValue::Arr(
                                    premises
                                        .iter()
                                        .map(|p| JsonValue::str(p.to_string()))
                                        .collect(),
                                ),
                            );
                        }
                    }
                    o
                })
                .collect(),
        )
    }
}

impl fmt::Display for JustificationChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            match &s.derivation {
                Derivation::Source => write!(f, "{} <- source", s.atom)?,
                Derivation::Tgd { dep, premises, .. } => {
                    write!(f, "{} <- {}(", s.atom, dep)?;
                    for (j, p) in premises.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, args: &[Value]) -> Atom {
        Atom::of(rel, args.to_vec())
    }

    fn konst(s: &str) -> Value {
        Value::konst(s)
    }

    #[test]
    fn explain_walks_premises_to_sources() {
        let a = atom("E", &[konst("a"), konst("b")]);
        let source = Instance::from_atoms([a.clone()]);
        let mut p = Provenance::for_source(&source);
        let t = atom("T", &[konst("a"), konst("b")]);
        p.record_derived(
            t.clone(),
            "d1",
            0,
            &[("x".into(), konst("a")), ("y".into(), konst("b"))],
            std::slice::from_ref(&a),
        );
        let chain = p.explain(&t).unwrap();
        assert_eq!(chain.steps.len(), 2);
        assert_eq!(chain.steps[0].atom, t);
        assert!(chain.ends_in_sources());
        assert_eq!(chain.source_atoms(), vec![&a]);
        // The chain renders and serialises.
        assert!(chain.to_string().contains("<- d1"));
        dex_obs::parse(&chain.to_json().dump()).unwrap();
    }

    #[test]
    fn explain_fails_on_missing_links() {
        let p = Provenance::default();
        assert!(p.explain(&atom("T", &[konst("a")])).is_none());
        let claimed = Instance::from_atoms([atom("T", &[konst("a")])]);
        assert!(p.verify_justified(&claimed).is_err());
    }

    #[test]
    fn merges_rekey_atoms_and_premises() {
        let n0 = Value::null(0);
        let n1 = Value::null(1);
        let src = atom("M", &[konst("a")]);
        let source = Instance::from_atoms([src.clone()]);
        let mut p = Provenance::for_source(&source);
        let f0 = atom("F", &[konst("a"), n0]);
        let f1 = atom("F", &[konst("a"), n1]);
        p.record_derived(f0.clone(), "d2", 1, &[("z".into(), n0)], &[src.clone()]);
        p.record_derived(f1.clone(), "d2", 1, &[("z".into(), n1)], &[src.clone()]);
        let g = atom("G", &[n1]);
        p.record_derived(g.clone(), "d3", 2, &[("y".into(), n1)], &[f1.clone()]);
        // d4 merges ⊥1 into ⊥0: F-atoms collapse, G(⊥1) becomes G(⊥0).
        p.record_merge("d4", n1, n0);
        assert_eq!(p.merges().len(), 1);
        assert!(p.derivation(&f1).is_none());
        assert!(p.derivation(&f0).is_some());
        let g_after = atom("G", &[n0]);
        let chain = p.explain(&g_after).unwrap();
        assert!(chain.ends_in_sources());
        // The premise was re-keyed too: it now names F(a,⊥0).
        match &chain.steps[0].derivation {
            Derivation::Tgd { premises, .. } => assert_eq!(premises, &[f0]),
            other => panic!("unexpected derivation {other:?}"),
        }
    }
}
