//! The delta-driven chase engine: semi-naive trigger discovery over
//! [`dex_core::DeltaCursor`] windows instead of the naive drivers'
//! per-step full rescan, with in-place egd merging through
//! [`dex_core::ValueUnionFind`] + [`dex_core::Instance::merge_value`].
//!
//! # Why semi-naive search is sound for the standard chase
//!
//! The restricted chase fires a trigger only when its (existential) head
//! `∃z̄ ψ` is not yet satisfiable. Satisfied heads *stay* satisfied under
//! both kinds of mutation: inserts only add witnesses, and an egd merge
//! maps the instance along the endomorphism `loser ↦ winner`, carrying
//! any witness atoms along while fixing the values of every surviving
//! (unrewritten) row. A body match that became *newly* unsatisfied must
//! therefore involve at least one row appended since the last
//! examination — and [`Instance::merge_value`] re-appends rewritten rows,
//! so they re-enter the delta window. Seeding each body atom with each
//! delta row thus reaches every genuinely new trigger.
//!
//! # Why the α-chase needs a full reset after merges
//!
//! An ᾱ-head is a *specific* set of atoms, not an existential: a merge
//! can rewrite one of them away and re-enable the trigger (the engine of
//! Example 4.4's α₃ loop). Inserts still never disable satisfaction, so
//! the α-run is delta-driven between merges and rewinds its cursor to
//! the origin (and re-examines the s-t matches) after every merge. The
//! α-run also keeps the naive driver's per-step state hashing so
//! provably-infinite runs are still reported as `CycleDetected`.

use crate::alpha::{AlphaOutcome, AlphaSource, AlphaSuccess, ChaseStep, Justification};
use crate::budget::ChaseBudget;
use crate::provenance::Provenance;
use crate::standard::{ChaseError, ChaseSuccess};
use crate::stats::ChaseStats;
use crate::witness::ConflictWitness;
use dex_core::govern::Clock;
use dex_core::{
    merge_policy, Atom, DeltaCursor, Instance, NullGen, SourceDelta, Symbol, Value, ValueUnionFind,
};
use dex_logic::matcher;
use dex_logic::{Assignment, Body, FAtom, Setting, Term, Tgd};
use dex_obs::{EventKind, Tracer};
use std::collections::{HashMap, HashSet};

/// A reusable chase driver for one setting + budget.
///
/// The engine reads all time — the budget's deadline *and* the
/// [`ChaseStats`] phase timings — from one [`Clock`]
/// ([`ChaseEngine::with_clock`] substitutes a mock), so deadline
/// decisions and reported timings can never disagree. The same clock
/// stamps every trace event, which is what makes two same-seed runs
/// under a mock clock byte-identical.
pub struct ChaseEngine<'a> {
    setting: &'a Setting,
    budget: ChaseBudget,
    clock: Clock,
    tracer: Tracer,
    provenance: bool,
}

/// The full trigger valuation of a body match, as (variable, value)
/// pairs in the assignment's (sorted) order.
fn valuation_of(env: &Assignment) -> Vec<(String, Value)> {
    env.bindings()
        .map(|(v, val)| (v.to_string(), val))
        .collect()
}

/// An egd trigger whose two sides are unequal, as found by
/// [`ChaseEngine::find_violation_seeded`].
struct EgdViolation {
    egd_index: usize,
    env: Assignment,
    left: Value,
    right: Value,
}

fn state_hash(inst: &Instance) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    inst.sorted_atoms().hash(&mut h);
    h.finish()
}

/// Owned copies of the delta rows of the body relations: firing mutates
/// the instance (reallocating row logs), so the round works off a
/// snapshot.
fn snapshot_delta(
    inst: &Instance,
    cursor: &DeltaCursor,
    rels: &HashSet<Symbol>,
) -> HashMap<Symbol, Vec<Box<[Value]>>> {
    let mut out = HashMap::new();
    for &rel in rels {
        let rows: Vec<Box<[Value]>> = inst.delta_rows(rel, cursor).map(Box::from).collect();
        if !rows.is_empty() {
            out.insert(rel, rows);
        }
    }
    out
}

/// Instantiates the ᾱ-head of `tgd` (at index `dep` in `all_tgds`
/// order) for the body match `env`, querying `alpha` per justification.
fn alpha_head(
    tgd: &Tgd,
    dep: usize,
    env: &Assignment,
    alpha: &mut dyn AlphaSource,
    inst: &Instance,
) -> Vec<Atom> {
    let frontier: Vec<Value> = tgd
        .frontier()
        .iter()
        .map(|&v| env.get(v).expect("body match binds frontier"))
        .collect();
    let body_only: Vec<Value> = tgd
        .body_only_vars()
        .iter()
        .map(|&v| env.get(v).expect("body match binds body vars"))
        .collect();
    let mut full = env.clone();
    for (zi, &z) in tgd.exist_vars.iter().enumerate() {
        let j = Justification {
            dep,
            frontier: frontier.clone(),
            body_only: body_only.clone(),
            z_index: zi,
        };
        full.bind(z, alpha.value(&j, inst));
    }
    tgd.instantiate_head(&full)
}

impl<'a> ChaseEngine<'a> {
    pub fn new(setting: &'a Setting, budget: &ChaseBudget) -> ChaseEngine<'a> {
        ChaseEngine {
            setting,
            budget: budget.clone(),
            clock: Clock::real(),
            tracer: Tracer::off(),
            provenance: false,
        }
    }

    /// Substitutes the time source (deadline checks + stats timings).
    pub fn with_clock(mut self, clock: Clock) -> ChaseEngine<'a> {
        self.clock = clock;
        self
    }

    /// Attaches a tracer. The default is off, in which case every
    /// emission site reduces to one branch (no clock read, no payload).
    pub fn with_tracer(mut self, tracer: Tracer) -> ChaseEngine<'a> {
        self.tracer = tracer;
        self
    }

    /// Enables per-atom provenance recording: the run's result carries
    /// a [`Provenance`] supporting `explain()` and the presolution
    /// justification cross-check.
    pub fn with_provenance(mut self, enabled: bool) -> ChaseEngine<'a> {
        self.provenance = enabled;
        self
    }

    /// Emits `kind` stamped with the engine clock (call sites gate on
    /// `self.tracer.enabled()` before building the payload).
    fn emit(&self, kind: EventKind) {
        self.tracer.emit(self.clock.now_ns(), kind);
    }

    fn t_body_rels(&self) -> HashSet<Symbol> {
        self.setting
            .t_tgds
            .iter()
            .flat_map(|t| t.body.relations())
            .collect()
    }

    fn check_steps(&self, steps: usize, inst: &Instance) -> Result<(), ChaseError> {
        if steps >= self.budget.max_steps {
            return Err(ChaseError::BudgetExceeded {
                steps,
                atoms: inst.len(),
            });
        }
        Ok(())
    }

    /// The first egd violation involving at least one row appended since
    /// `seed` (after an egd fixpoint every later violation must: new
    /// violations need a new or rewritten row). Returns the violating
    /// trigger: egd index, full body match, and the two unequal values.
    fn find_violation_seeded(&self, inst: &Instance, seed: &DeltaCursor) -> Option<EgdViolation> {
        for (ei, egd) in self.setting.egds.iter().enumerate() {
            for (i, batom) in egd.body.iter().enumerate() {
                for row in inst.delta_rows(batom.rel, seed) {
                    let mut hit = None;
                    matcher::for_each_match_seeded(
                        &egd.body,
                        i,
                        row,
                        inst,
                        &Assignment::new(),
                        &mut |env| {
                            let l = env.get(egd.lhs).expect("egd body binds lhs");
                            let r = env.get(egd.rhs).expect("egd body binds rhs");
                            if l != r {
                                hit = Some((env.clone(), l, r));
                                false
                            } else {
                                true
                            }
                        },
                    );
                    if let Some((env, left, right)) = hit {
                        return Some(EgdViolation {
                            egd_index: ei,
                            env,
                            left,
                            right,
                        });
                    }
                }
            }
        }
        None
    }

    /// Builds the structured conflict witness for an egd trigger that
    /// equated the distinct constants `c` and `d`, with justification
    /// chains when the run records provenance.
    fn conflict_witness(
        &self,
        v: &EgdViolation,
        c: Value,
        d: Value,
        prov: Option<&Provenance>,
    ) -> Box<ConflictWitness> {
        let egd = &self.setting.egds[v.egd_index];
        let w = ConflictWitness::from_trigger(egd, v.egd_index, &v.env, c, d);
        Box::new(match prov {
            Some(p) => w.with_provenance(p),
            None => w,
        })
    }

    /// The violating trigger's instantiated body atoms — the premises
    /// whose continued support keeps the merge justified under
    /// incremental deletion ([`Provenance::record_merge`]).
    fn egd_premises(egd: &dex_logic::Egd, v: &EgdViolation) -> Vec<Atom> {
        egd.body
            .iter()
            .map(|a| {
                Atom::new(
                    a.rel,
                    a.args
                        .iter()
                        .map(|&t| v.env.term(t).expect("egd trigger env binds its body"))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Fires one restricted-chase trigger: fresh nulls for the
    /// existentials, head atoms inserted with the atom budget enforced
    /// per insertion (one wide head cannot overshoot unboundedly).
    #[allow(clippy::too_many_arguments)]
    fn fire_standard(
        &self,
        tgd: &Tgd,
        dep_index: usize,
        mut env: Assignment,
        inst: &mut Instance,
        nulls: &mut NullGen,
        steps: usize,
        stats: &mut ChaseStats,
        prov: Option<&mut Provenance>,
    ) -> Result<(), ChaseError> {
        // Premises come from the body match alone, so capture them
        // before the existentials are bound (FO bodies decompose into
        // no premise atoms).
        let premises = prov
            .as_ref()
            .map(|_| tgd.body.instantiate(&env).unwrap_or_default());
        for &z in &tgd.exist_vars {
            env.bind(z, nulls.fresh_value());
        }
        let mut atoms_added = 0usize;
        for atom in tgd.instantiate_head(&env) {
            if inst.insert(atom) {
                atoms_added += 1;
                stats.atoms_inserted += 1;
                stats.peak_atoms = stats.peak_atoms.max(inst.len());
                if inst.len() > self.budget.max_atoms {
                    return Err(ChaseError::BudgetExceeded {
                        steps,
                        atoms: inst.len(),
                    });
                }
            }
        }
        if let Some(p) = prov {
            let valuation = valuation_of(&env);
            let premises = premises.unwrap_or_default();
            // Record every head atom: already-present ones keep their
            // earlier derivation (`record_derived` is first-write-wins).
            for atom in tgd.instantiate_head(&env) {
                p.record_derived(atom, &tgd.name, dep_index, &valuation, &premises);
            }
        }
        if self.tracer.enabled() {
            self.emit(EventKind::TgdFired {
                dep: tgd.name.clone(),
                atoms_added,
            });
        }
        Ok(())
    }

    /// The standard restricted chase (same contract as [`crate::chase`]).
    pub fn run(&self, source: &Instance) -> Result<ChaseSuccess, ChaseError> {
        let gov = self
            .budget
            .governor(&self.clock)
            .with_tracer(self.tracer.clone());
        let t_total = self.clock.now_ns();
        let mut stats = ChaseStats::default();
        let sigma_part = source.clone();
        let mut inst = source.clone();
        stats.peak_atoms = inst.len();
        let mut nulls = NullGen::above(source.active_domain().iter());
        let mut uf = ValueUnionFind::new();
        let mut steps = 0usize;
        let mut prov = self.provenance.then(|| Provenance::for_source(source));
        if self.tracer.enabled() {
            self.emit(EventKind::ChaseStarted {
                driver: "delta_standard".to_string(),
                atoms: inst.len(),
            });
        }

        // Phase A: s-t tgds. σ never changes, so each body is matched
        // exactly once (FO bodies compute their quantification domain
        // once inside `matches`); the restricted head check still runs
        // against the evolving instance.
        let t_phase = self.clock.now_ns();
        let sp_st = self.tracer.span("st_tgds", t_phase);
        for (ti, tgd) in self.setting.st_tgds.iter().enumerate() {
            for env in tgd.body.matches(&sigma_part) {
                gov.check()?;
                stats.triggers_examined += 1;
                if self.tracer.enabled() {
                    self.emit(EventKind::TriggerExamined {
                        dep: tgd.name.clone(),
                    });
                }
                if !tgd.head_holds(&inst, &env) {
                    self.check_steps(steps, &inst)?;
                    self.fire_standard(
                        tgd,
                        ti,
                        env,
                        &mut inst,
                        &mut nulls,
                        steps,
                        &mut stats,
                        prov.as_mut(),
                    )?;
                    steps += 1;
                    stats.tgd_steps += 1;
                    stats.triggers_fired += 1;
                }
            }
        }
        sp_st.close(self.clock.now_ns());
        stats.tgd_time_ns += (self.clock.now_ns() - t_phase) as u128;

        // Phase B: semi-naive fixpoint over egds and target tgds.
        self.run_fixpoint(
            &gov,
            &mut inst,
            &mut nulls,
            &mut uf,
            &mut steps,
            &mut stats,
            &mut prov,
            DeltaCursor::origin(),
            None,
        )?;

        stats.total_time_ns = (self.clock.now_ns() - t_total) as u128;
        let target = inst.difference(&sigma_part);
        if self.tracer.enabled() {
            self.emit(EventKind::ChaseCompleted {
                atoms: inst.len(),
                steps,
            });
        }
        Ok(ChaseSuccess {
            result: inst,
            target,
            steps,
            stats,
            provenance: prov,
        })
    }

    /// The semi-naive egd/target-tgd fixpoint (Phase B of [`run`] and
    /// the continuation phase of [`resume`]): alternate an egd fixpoint
    /// (seeded at `egd_clean`, or the origin when `None`) with one
    /// seeded tgd round over the delta window past `processed`, until a
    /// round adds nothing.
    ///
    /// [`run`]: ChaseEngine::run
    /// [`resume`]: ChaseEngine::resume
    #[allow(clippy::too_many_arguments)]
    fn run_fixpoint(
        &self,
        gov: &dex_core::Governor,
        mut inst: &mut Instance,
        mut nulls: &mut NullGen,
        uf: &mut ValueUnionFind,
        steps_ref: &mut usize,
        mut stats: &mut ChaseStats,
        prov: &mut Option<Provenance>,
        mut processed: DeltaCursor,
        egd_seed: Option<DeltaCursor>,
    ) -> Result<(), ChaseError> {
        let mut steps = *steps_ref;
        let mut egd_clean: Option<DeltaCursor> = egd_seed;
        let out = (|| -> Result<(), ChaseError> {
            let t_rels = self.t_body_rels();
            loop {
                // Per round, consult deadline/cancel unconditionally — the
                // amortized `check()` only reaches them every 1024 ticks,
                // too coarse for small instances.
                gov.force_check()?;
                // Spans leak (stay open) when a governor interrupt or
                // budget error unwinds out of the round; the analyzer
                // treats that like a truncated trace.
                let sp_round = self.tracer.span("round", self.clock.now_ns());
                // Egds first, to a fixpoint. The seed stays put while the
                // fixpoint runs: merges re-append the rows they rewrite, so
                // follow-on violations stay inside the window.
                let t_phase = self.clock.now_ns();
                let sp_egd = self.tracer.span("egd_fixpoint", t_phase);
                let seed = egd_clean.take().unwrap_or_default();
                while let Some(v) = self.find_violation_seeded(&inst, &seed) {
                    gov.check()?;
                    self.check_steps(steps, &inst).map_err(|e| {
                        stats.egd_time_ns += (self.clock.now_ns() - t_phase) as u128;
                        e
                    })?;
                    match uf.union(v.left, v.right) {
                        Err((c, d)) => {
                            return Err(ChaseError::EgdConflict {
                                witness: self.conflict_witness(
                                    &v,
                                    Value::Const(c),
                                    Value::Const(d),
                                    prov.as_ref(),
                                ),
                            })
                        }
                        Ok(Some(m)) => {
                            let egd = &self.setting.egds[v.egd_index].name;
                            let rewritten = inst.merge_value(m.loser, m.winner);
                            stats.rows_rewritten += rewritten;
                            steps += 1;
                            stats.egd_steps += 1;
                            if let Some(p) = prov.as_mut() {
                                let premises =
                                    Self::egd_premises(&self.setting.egds[v.egd_index], &v);
                                p.record_merge(egd, m.loser, m.winner, &premises);
                            }
                            if self.tracer.enabled() {
                                self.emit(EventKind::EgdMerged {
                                    dep: egd.clone(),
                                    loser: m.loser.to_string(),
                                    winner: m.winner.to_string(),
                                    rows_rewritten: rewritten,
                                });
                            }
                        }
                        // Same class but both still live cannot happen (losers
                        // are rewritten out of every live row); bail defensively.
                        Ok(None) => break,
                    }
                }
                egd_clean = Some(inst.cursor());
                sp_egd.close(self.clock.now_ns());
                stats.egd_time_ns += (self.clock.now_ns() - t_phase) as u128;

                if !inst.has_delta_since(&processed) {
                    sp_round.close(self.clock.now_ns());
                    break;
                }

                // One semi-naive round: only triggers touching a delta row
                // can be new, so seed the matcher with each delta row at
                // each body position.
                let t_phase = self.clock.now_ns();
                let sp_tgd = self.tracer.span("tgd_round", t_phase);
                stats.rounds += 1;
                let delta = snapshot_delta(&inst, &processed, &t_rels);
                processed = inst.cursor();
                let round_rows: usize = delta.values().map(Vec::len).sum();
                stats.delta_rows_processed += round_rows;
                stats.max_round_delta_rows = stats.max_round_delta_rows.max(round_rows);
                let st_count = self.setting.st_tgds.len();
                for (ti, tgd) in self.setting.t_tgds.iter().enumerate() {
                    let dep_index = st_count + ti;
                    match &tgd.body {
                        Body::Conj(atoms) => {
                            let mut row_envs: Vec<Assignment> = Vec::new();
                            for (i, batom) in atoms.iter().enumerate() {
                                let Some(rows) = delta.get(&batom.rel) else {
                                    continue;
                                };
                                for row in rows {
                                    row_envs.clear();
                                    matcher::for_each_match_seeded(
                                        atoms,
                                        i,
                                        row,
                                        &inst,
                                        &Assignment::new(),
                                        &mut |env| {
                                            row_envs.push(env.clone());
                                            true
                                        },
                                    );
                                    for env in row_envs.drain(..) {
                                        gov.check()?;
                                        stats.triggers_examined += 1;
                                        if self.tracer.enabled() {
                                            self.emit(EventKind::TriggerExamined {
                                                dep: tgd.name.clone(),
                                            });
                                        }
                                        if !tgd.head_holds(&inst, &env) {
                                            self.check_steps(steps, &inst).map_err(|e| {
                                                stats.tgd_time_ns +=
                                                    (self.clock.now_ns() - t_phase) as u128;
                                                e
                                            })?;
                                            self.fire_standard(
                                                tgd,
                                                dep_index,
                                                env,
                                                &mut inst,
                                                &mut nulls,
                                                steps,
                                                &mut stats,
                                                prov.as_mut(),
                                            )?;
                                            steps += 1;
                                            stats.tgd_steps += 1;
                                            stats.triggers_fired += 1;
                                        }
                                    }
                                }
                            }
                        }
                        // Target bodies are conjunctive by construction; if
                        // one ever is not, fall back to a full examination.
                        body => {
                            for env in body.matches(&inst) {
                                gov.check()?;
                                stats.triggers_examined += 1;
                                if self.tracer.enabled() {
                                    self.emit(EventKind::TriggerExamined {
                                        dep: tgd.name.clone(),
                                    });
                                }
                                if !tgd.head_holds(&inst, &env) {
                                    self.check_steps(steps, &inst)?;
                                    self.fire_standard(
                                        tgd,
                                        dep_index,
                                        env,
                                        &mut inst,
                                        &mut nulls,
                                        steps,
                                        &mut stats,
                                        prov.as_mut(),
                                    )?;
                                    steps += 1;
                                    stats.tgd_steps += 1;
                                    stats.triggers_fired += 1;
                                }
                            }
                        }
                    }
                }
                sp_tgd.close(self.clock.now_ns());
                stats.tgd_time_ns += (self.clock.now_ns() - t_phase) as u128;
                if self.tracer.enabled() {
                    self.emit(EventKind::RoundCompleted {
                        round: stats.rounds,
                        delta_rows: round_rows,
                    });
                }
                sp_round.close(self.clock.now_ns());
            }
            Ok(())
        })();
        *steps_ref = steps;
        out
    }

    /// Incremental data exchange: continues a prior chase result under a
    /// source delta instead of re-chasing from scratch.
    ///
    /// **Insertions** are exactly the semi-naive frontier the engine
    /// already works with: the new source rows seed s-t trigger
    /// discovery, and everything they cause lands in the delta window
    /// the target fixpoint consumes. **Deletions** run DRed-style
    /// propagation over the recorded justification graph
    /// ([`Provenance::retract_sources`]): atoms whose every chain is
    /// dead are retracted, then survivors are re-derived by re-firing
    /// triggers whose premises still hold, seeded from the removed
    /// atoms' head positions.
    ///
    /// The egd boundary: union-find merges are not invertible, so a
    /// merge whose trigger lost support is handled by *over-deleting*
    /// its value cone and letting re-derivation (plus the egd fixpoint
    /// over the re-inserted rows) rebuild whatever still holds — the
    /// result matches a full re-chase up to isomorphism, not atom-for-
    /// atom.
    ///
    /// Falls back to a full re-chase of the updated source when
    /// deletions are present but the prior run recorded no provenance,
    /// or when any dependency has an FO body (FO derivations have no
    /// premise decomposition to propagate deletions through).
    ///
    /// On `Err` the prior result is untouched (the engine works on
    /// clones), so a governed/faulted resume leaves a sound state
    /// behind.
    pub fn resume(
        &self,
        prior: &ChaseSuccess,
        delta: &SourceDelta,
    ) -> Result<ChaseSuccess, ChaseError> {
        let gov = self
            .budget
            .governor(&self.clock)
            .with_tracer(self.tracer.clone());
        let t_total = self.clock.now_ns();
        let sp_resume = self.tracer.span("resume", t_total);

        // The σ-part of the prior result. Source instances are ground
        // and source/target schemas are disjoint, so egd merges never
        // rewrote a σ-row: the difference recovers the chased source.
        let sigma_old = prior.result.difference(&prior.target);

        // Net the batch against the current source: deletes apply
        // first, so delete∩insert of a present atom is a no-op, and
        // absent deletes / already-present inserts drop out entirely.
        let mut seen: HashSet<&Atom> = HashSet::new();
        let net_deletes: Vec<Atom> = delta
            .deletes
            .iter()
            .filter(|a| seen.insert(*a) && sigma_old.contains(a) && !delta.inserts.contains(a))
            .cloned()
            .collect();
        seen.clear();
        let net_inserts: Vec<Atom> = delta
            .inserts
            .iter()
            .filter(|a| seen.insert(*a) && !sigma_old.contains(a))
            .cloned()
            .collect();
        drop(seen);

        let has_fo_body = self
            .setting
            .st_tgds
            .iter()
            .chain(&self.setting.t_tgds)
            .any(|t| !matches!(t.body, Body::Conj(_)));
        if !sigma_old.is_ground()
            || (!net_deletes.is_empty() && (prior.provenance.is_none() || has_fo_body))
        {
            // Deletion propagation needs a justification graph with
            // atom-decomposed premises; without one, correctness comes
            // from a plain re-chase of the updated source.
            let updated = delta.applied(&sigma_old);
            sp_resume.close(self.clock.now_ns());
            let fallback = ChaseEngine {
                setting: self.setting,
                budget: self.budget.clone(),
                clock: self.clock.clone(),
                tracer: self.tracer.clone(),
                provenance: prior.provenance.is_some(),
            };
            return fallback.run(&updated);
        }

        let mut inst = prior.result.clone();
        let mut prov = prior.provenance.clone();
        let mut stats = ChaseStats::default();
        stats.peak_atoms = inst.len();
        let mut nulls = NullGen::above(prior.result.active_domain().iter());
        let mut uf = ValueUnionFind::new();
        let mut steps = 0usize;
        if self.tracer.enabled() {
            self.emit(EventKind::ChaseStarted {
                driver: "resume".to_string(),
                atoms: inst.len(),
            });
        }
        // The updated σ-part, for FO s-t re-examination and the final
        // target split.
        let sigma_new = delta.applied(&sigma_old);
        // Cursors taken before any mutation: every row this resume
        // appends (re-derivations, new source rows, their consequences)
        // is inside the windows the fixpoint consumes.
        let processed = inst.cursor();
        let egd_seed = inst.cursor();

        // Deletions: retract everything whose justifications all died,
        // then re-derive survivors head-first — each newly-unsatisfied
        // trigger's prior head witness intersects the removed set, so
        // seeding body matches from removed atoms' head positions
        // reaches every such trigger.
        let removed = if net_deletes.is_empty() {
            Vec::new()
        } else {
            let p = prov
                .as_mut()
                .expect("fallback handled the provenance-free case");
            let removed = p.retract_sources(&net_deletes);
            for a in &removed {
                inst.remove(a);
            }
            stats.atoms_retracted = removed.len();
            removed
        };
        let inserted_before_refire = stats.atoms_inserted;
        let st_count = self.setting.st_tgds.len();
        for r in &removed {
            let all = self.setting.st_tgds.iter().enumerate().chain(
                self.setting
                    .t_tgds
                    .iter()
                    .enumerate()
                    .map(|(ti, t)| (st_count + ti, t)),
            );
            for (dep_index, tgd) in all {
                let Body::Conj(body_atoms) = &tgd.body else {
                    continue; // FO bodies forced the fallback above.
                };
                for h in &tgd.head {
                    let Some(env0) = Self::seed_from_head(tgd, h, r) else {
                        continue;
                    };
                    let mut envs: Vec<Assignment> = Vec::new();
                    matcher::for_each_match(body_atoms, &inst, &env0, &mut |env| {
                        envs.push(env.clone());
                        true
                    });
                    for env in envs {
                        gov.check()?;
                        stats.triggers_examined += 1;
                        if self.tracer.enabled() {
                            self.emit(EventKind::TriggerExamined {
                                dep: tgd.name.clone(),
                            });
                        }
                        if !tgd.head_holds(&inst, &env) {
                            self.check_steps(steps, &inst)?;
                            self.fire_standard(
                                tgd,
                                dep_index,
                                env,
                                &mut inst,
                                &mut nulls,
                                steps,
                                &mut stats,
                                prov.as_mut(),
                            )?;
                            steps += 1;
                            stats.tgd_steps += 1;
                            stats.triggers_fired += 1;
                        }
                    }
                }
            }
        }
        stats.atoms_rederived = stats.atoms_inserted - inserted_before_refire;

        // Insertions: add the new source rows, then seed s-t trigger
        // discovery from exactly those rows (σ never changes otherwise,
        // so no other s-t trigger can be new).
        for a in &net_inserts {
            if inst.insert(a.clone()) {
                stats.peak_atoms = stats.peak_atoms.max(inst.len());
                if let Some(p) = prov.as_mut() {
                    p.record_source(a.clone());
                }
            }
        }
        for (ti, tgd) in self.setting.st_tgds.iter().enumerate() {
            match &tgd.body {
                Body::Conj(body_atoms) => {
                    let mut row_envs: Vec<Assignment> = Vec::new();
                    for (i, batom) in body_atoms.iter().enumerate() {
                        for a in net_inserts.iter().filter(|a| a.rel == batom.rel) {
                            row_envs.clear();
                            matcher::for_each_match_seeded(
                                body_atoms,
                                i,
                                &a.args,
                                &inst,
                                &Assignment::new(),
                                &mut |env| {
                                    row_envs.push(env.clone());
                                    true
                                },
                            );
                            for env in row_envs.drain(..) {
                                gov.check()?;
                                stats.triggers_examined += 1;
                                if self.tracer.enabled() {
                                    self.emit(EventKind::TriggerExamined {
                                        dep: tgd.name.clone(),
                                    });
                                }
                                if !tgd.head_holds(&inst, &env) {
                                    self.check_steps(steps, &inst)?;
                                    self.fire_standard(
                                        tgd,
                                        ti,
                                        env,
                                        &mut inst,
                                        &mut nulls,
                                        steps,
                                        &mut stats,
                                        prov.as_mut(),
                                    )?;
                                    steps += 1;
                                    stats.tgd_steps += 1;
                                    stats.triggers_fired += 1;
                                }
                            }
                        }
                    }
                }
                // FO s-t bodies have no seedable decomposition: new
                // matches can only mention new constants, but finding
                // them takes a full re-examination over the updated
                // σ-part (quantification ranges over σ's domain only).
                body => {
                    if net_inserts.is_empty() {
                        continue;
                    }
                    for env in body.matches(&sigma_new) {
                        gov.check()?;
                        stats.triggers_examined += 1;
                        if self.tracer.enabled() {
                            self.emit(EventKind::TriggerExamined {
                                dep: tgd.name.clone(),
                            });
                        }
                        if !tgd.head_holds(&inst, &env) {
                            self.check_steps(steps, &inst)?;
                            self.fire_standard(
                                tgd,
                                ti,
                                env,
                                &mut inst,
                                &mut nulls,
                                steps,
                                &mut stats,
                                prov.as_mut(),
                            )?;
                            steps += 1;
                            stats.tgd_steps += 1;
                            stats.triggers_fired += 1;
                        }
                    }
                }
            }
        }

        // Continue the target fixpoint over everything this resume
        // appended — the same loop a from-scratch run uses, so governed
        // interruption and budget behavior are identical.
        self.run_fixpoint(
            &gov,
            &mut inst,
            &mut nulls,
            &mut uf,
            &mut steps,
            &mut stats,
            &mut prov,
            processed,
            Some(egd_seed),
        )?;

        stats.total_time_ns = (self.clock.now_ns() - t_total) as u128;
        let target = inst.difference(&sigma_new);
        if self.tracer.enabled() {
            self.emit(EventKind::ResumeApplied {
                inserts: net_inserts.len(),
                deletes: net_deletes.len(),
                atoms_retracted: stats.atoms_retracted,
                atoms_rederived: stats.atoms_rederived,
            });
            self.emit(EventKind::ChaseCompleted {
                atoms: inst.len(),
                steps,
            });
        }
        sp_resume.close(self.clock.now_ns());
        Ok(ChaseSuccess {
            result: inst,
            target,
            steps,
            stats,
            provenance: prov,
        })
    }

    /// Unifies the head atom `h` against the retracted ground atom `r`:
    /// constants must agree, universal head variables bind into the
    /// returned partial body match, and existential variables only need
    /// internal consistency (a re-fired trigger re-witnesses them with
    /// fresh nulls).
    fn seed_from_head(tgd: &Tgd, h: &FAtom, r: &Atom) -> Option<Assignment> {
        if h.rel != r.rel || h.args.len() != r.args.len() {
            return None;
        }
        let mut env = Assignment::new();
        let mut exist: HashMap<dex_logic::Var, Value> = HashMap::new();
        for (&t, &v) in h.args.iter().zip(r.args.iter()) {
            match t {
                Term::Const(c) => {
                    if Value::Const(c) != v {
                        return None;
                    }
                }
                Term::Var(x) if tgd.exist_vars.contains(&x) => match exist.get(&x) {
                    Some(&old) if old != v => return None,
                    _ => {
                        exist.insert(x, v);
                    }
                },
                Term::Var(x) => match env.get(x) {
                    Some(old) if old != v => return None,
                    Some(_) => {}
                    None => env.bind(x, v),
                },
            }
        }
        Some(env)
    }

    /// Fires one ᾱ-trigger. `Err` carries the terminal outcome.
    #[allow(clippy::too_many_arguments)]
    fn alpha_fire(
        &self,
        tgd: &Tgd,
        dep_index: usize,
        env: &Assignment,
        head: Vec<Atom>,
        inst: &mut Instance,
        steps: &mut usize,
        trace: &mut Vec<ChaseStep>,
        seen: &mut HashSet<u64>,
        stats: &mut ChaseStats,
        prov: Option<&mut Provenance>,
    ) -> Result<(), AlphaOutcome> {
        if *steps >= self.budget.max_steps {
            return Err(AlphaOutcome::BudgetExceeded {
                steps: *steps,
                atoms: inst.len(),
            });
        }
        if let Some(p) = prov {
            // The α-justification is (d, ū, v̄): the body match alone —
            // the z̄ witnesses come from the α-source, not the trigger.
            let valuation = valuation_of(env);
            let premises = tgd.body.instantiate(env).unwrap_or_default();
            for a in &head {
                p.record_derived(a.clone(), &tgd.name, dep_index, &valuation, &premises);
            }
        }
        let mut added = Vec::new();
        for a in head {
            if inst.insert(a.clone()) {
                stats.atoms_inserted += 1;
                stats.peak_atoms = stats.peak_atoms.max(inst.len());
                added.push(a);
                if inst.len() > self.budget.max_atoms {
                    return Err(AlphaOutcome::BudgetExceeded {
                        steps: *steps,
                        atoms: inst.len(),
                    });
                }
            }
        }
        *steps += 1;
        stats.tgd_steps += 1;
        stats.triggers_fired += 1;
        if self.tracer.enabled() {
            self.emit(EventKind::TgdFired {
                dep: tgd.name.clone(),
                atoms_added: added.len(),
            });
        }
        trace.push(ChaseStep::TgdApplied {
            dep: tgd.name.clone(),
            added,
        });
        if !seen.insert(state_hash(inst)) {
            return Err(AlphaOutcome::CycleDetected { steps: *steps });
        }
        Ok(())
    }

    /// The α-chase (same contract as [`crate::alpha_chase`]).
    pub fn run_alpha(&self, source: &Instance, alpha: &mut dyn AlphaSource) -> AlphaOutcome {
        debug_assert!(source.is_ground(), "α-chase starts from ground instances");
        let gov = self
            .budget
            .governor(&self.clock)
            .with_tracer(self.tracer.clone());
        let t_total = self.clock.now_ns();
        let mut stats = ChaseStats::default();
        let sigma_part = source.clone();
        let mut inst = source.clone();
        stats.peak_atoms = inst.len();
        let st_count = self.setting.st_tgds.len();
        let mut steps = 0usize;
        let mut trace: Vec<ChaseStep> = Vec::new();
        let mut seen_states: HashSet<u64> = HashSet::new();
        seen_states.insert(state_hash(&inst));
        let mut prov = self.provenance.then(|| Provenance::for_source(source));
        if self.tracer.enabled() {
            self.emit(EventKind::ChaseStarted {
                driver: "delta_alpha".to_string(),
                atoms: inst.len(),
            });
        }

        // σ is ground and merges only ever rewrite nulls, so the s-t
        // body matches are computed exactly once for the whole run.
        let st_matches: Vec<Vec<Assignment>> = self
            .setting
            .st_tgds
            .iter()
            .map(|t| t.body.matches(&sigma_part))
            .collect();
        let t_rels = self.t_body_rels();

        let mut processed = DeltaCursor::origin();
        let mut egd_clean: Option<DeltaCursor> = None;
        let mut st_dirty = true;
        loop {
            // Per round, consult deadline/cancel unconditionally (the
            // amortized `check()` is too coarse for small instances).
            if let Err(i) = gov.force_check() {
                return AlphaOutcome::Interrupted(i);
            }
            // Spans leak on terminal outcomes mid-round (interrupt,
            // budget, conflict, cycle) — the analyzer treats the trace
            // like a truncated one.
            let sp_round = self.tracer.span("round", self.clock.now_ns());
            // Egd applications, eagerly to a fixpoint. Any merge can
            // remove a fixed ᾱ-head, so it rewinds both the target
            // cursor and the s-t examination.
            let t_phase = self.clock.now_ns();
            let sp_egd = self.tracer.span("egd_fixpoint", t_phase);
            let seed = egd_clean.take().unwrap_or_default();
            while let Some(v) = self.find_violation_seeded(&inst, &seed) {
                if let Err(i) = gov.check() {
                    return AlphaOutcome::Interrupted(i);
                }
                if steps >= self.budget.max_steps {
                    return AlphaOutcome::BudgetExceeded {
                        steps,
                        atoms: inst.len(),
                    };
                }
                // Merge policy applied to the raw pair, NOT a persistent
                // union-find: a fixed α can re-introduce a merged-away
                // null (Example 4.4's α₃), which a union-find would treat
                // as "already merged" and silently drop.
                match merge_policy(v.left, v.right) {
                    Err((c, d)) => {
                        return AlphaOutcome::Failing {
                            witness: self.conflict_witness(
                                &v,
                                Value::Const(c),
                                Value::Const(d),
                                prov.as_ref(),
                            ),
                            steps,
                        }
                    }
                    Ok(Some(m)) => {
                        let egd = self.setting.egds[v.egd_index].name.clone();
                        let rewritten = inst.merge_value(m.loser, m.winner);
                        stats.rows_rewritten += rewritten;
                        steps += 1;
                        stats.egd_steps += 1;
                        if let Some(p) = prov.as_mut() {
                            let premises = Self::egd_premises(&self.setting.egds[v.egd_index], &v);
                            p.record_merge(&egd, m.loser, m.winner, &premises);
                        }
                        if self.tracer.enabled() {
                            self.emit(EventKind::EgdMerged {
                                dep: egd.clone(),
                                loser: m.loser.to_string(),
                                winner: m.winner.to_string(),
                                rows_rewritten: rewritten,
                            });
                        }
                        trace.push(ChaseStep::EgdApplied {
                            dep: egd,
                            from: m.loser,
                            to: m.winner,
                        });
                        st_dirty = true;
                        processed = DeltaCursor::origin();
                        if !seen_states.insert(state_hash(&inst)) {
                            return AlphaOutcome::CycleDetected { steps };
                        }
                    }
                    Ok(None) => break,
                }
            }
            egd_clean = Some(inst.cursor());
            sp_egd.close(self.clock.now_ns());
            stats.egd_time_ns += (self.clock.now_ns() - t_phase) as u128;

            if !st_dirty && !inst.has_delta_since(&processed) {
                // Fixpoint: egds hold and every examined trigger's
                // ᾱ-head is (still) present.
                sp_round.close(self.clock.now_ns());
                stats.total_time_ns = (self.clock.now_ns() - t_total) as u128;
                let target = inst.difference(&sigma_part);
                if self.tracer.enabled() {
                    self.emit(EventKind::ChaseCompleted {
                        atoms: inst.len(),
                        steps,
                    });
                }
                return AlphaOutcome::Success(AlphaSuccess {
                    result: inst,
                    target,
                    steps,
                    trace,
                    stats,
                    provenance: prov,
                });
            }

            let t_phase = self.clock.now_ns();
            let sp_tgd = self.tracer.span("tgd_round", t_phase);
            if st_dirty {
                st_dirty = false;
                for (ti, tgd) in self.setting.st_tgds.iter().enumerate() {
                    for env in &st_matches[ti] {
                        if let Err(i) = gov.check() {
                            return AlphaOutcome::Interrupted(i);
                        }
                        stats.triggers_examined += 1;
                        if self.tracer.enabled() {
                            self.emit(EventKind::TriggerExamined {
                                dep: tgd.name.clone(),
                            });
                        }
                        let head = alpha_head(tgd, ti, env, alpha, &inst);
                        if head.iter().any(|a| !inst.contains(a)) {
                            if let Err(out) = self.alpha_fire(
                                tgd,
                                ti,
                                env,
                                head,
                                &mut inst,
                                &mut steps,
                                &mut trace,
                                &mut seen_states,
                                &mut stats,
                                prov.as_mut(),
                            ) {
                                return out;
                            }
                        }
                    }
                }
            }
            if inst.has_delta_since(&processed) {
                stats.rounds += 1;
                let delta = snapshot_delta(&inst, &processed, &t_rels);
                processed = inst.cursor();
                let round_rows: usize = delta.values().map(Vec::len).sum();
                stats.delta_rows_processed += round_rows;
                stats.max_round_delta_rows = stats.max_round_delta_rows.max(round_rows);
                for (ti, tgd) in self.setting.t_tgds.iter().enumerate() {
                    let dep = st_count + ti;
                    let envs: Vec<Assignment> = match &tgd.body {
                        Body::Conj(atoms) => {
                            let mut envs = Vec::new();
                            for (i, batom) in atoms.iter().enumerate() {
                                let Some(rows) = delta.get(&batom.rel) else {
                                    continue;
                                };
                                for row in rows {
                                    matcher::for_each_match_seeded(
                                        atoms,
                                        i,
                                        row,
                                        &inst,
                                        &Assignment::new(),
                                        &mut |env| {
                                            envs.push(env.clone());
                                            true
                                        },
                                    );
                                }
                            }
                            envs
                        }
                        body => body.matches(&inst),
                    };
                    for env in envs {
                        if let Err(i) = gov.check() {
                            return AlphaOutcome::Interrupted(i);
                        }
                        stats.triggers_examined += 1;
                        if self.tracer.enabled() {
                            self.emit(EventKind::TriggerExamined {
                                dep: tgd.name.clone(),
                            });
                        }
                        let head = alpha_head(tgd, dep, &env, alpha, &inst);
                        if head.iter().any(|a| !inst.contains(a)) {
                            if let Err(out) = self.alpha_fire(
                                tgd,
                                dep,
                                &env,
                                head,
                                &mut inst,
                                &mut steps,
                                &mut trace,
                                &mut seen_states,
                                &mut stats,
                                prov.as_mut(),
                            ) {
                                return out;
                            }
                        }
                    }
                }
                if self.tracer.enabled() {
                    self.emit(EventKind::RoundCompleted {
                        round: stats.rounds,
                        delta_rows: round_rows,
                    });
                }
            }
            sp_tgd.close(self.clock.now_ns());
            stats.tgd_time_ns += (self.clock.now_ns() - t_phase) as u128;
            sp_round.close(self.clock.now_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::chase_naive;
    use dex_core::hom_equivalent;
    use dex_logic::{parse_instance, parse_setting};

    #[test]
    fn engine_matches_naive_on_transitive_closure() {
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,b). E(b,c). E(c,d). E(d,e).").unwrap();
        let budget = ChaseBudget::default();
        let fast = ChaseEngine::new(&d, &budget).run(&s).unwrap();
        let slow = chase_naive(&d, &s, &budget).unwrap();
        assert_eq!(fast.target.len(), 10); // all pairs (i<j) on a 5-path
        assert_eq!(fast.target, slow.target);
        assert!(fast.stats.validate().is_ok());
        assert!(fast.stats.rounds >= 2);
        assert!(fast.stats.triggers_fired <= fast.stats.triggers_examined);
    }

    #[test]
    fn engine_runs_egds_through_the_union_find() {
        let d = parse_setting(
            "source { P/1, Q/2 }
             target { F/2 }
             st {
               P(x) -> exists z . F(x,z);
               Q(x,y) -> F(x,y);
             }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a). Q(a,b).").unwrap();
        let budget = ChaseBudget::default();
        let out = ChaseEngine::new(&d, &budget).run(&s).unwrap();
        assert_eq!(out.target.len(), 1);
        assert!(out
            .target
            .contains(&Atom::of("F", vec![Value::konst("a"), Value::konst("b")])));
        assert!(out.stats.egd_steps >= 1);
        assert!(out.stats.rows_rewritten >= 1);
        assert!(out.stats.validate().is_ok());
    }

    #[test]
    fn engine_merge_then_refire_reaches_the_naive_fixpoint() {
        // The merge rewrites F-rows, which must re-enter the delta so
        // the target tgd sees the merged row.
        let d = parse_setting(
            "source { P/2 }
             target { F/2, G/1 }
             st { P(x,y) -> exists z . F(x,z); }
             t {
               F(x,y) & F(x,z) -> y = z;
               F(x,y) -> G(y);
             }",
        )
        .unwrap();
        let s = parse_instance("P(a,b). P(a,c).").unwrap();
        let budget = ChaseBudget::default();
        let fast = ChaseEngine::new(&d, &budget).run(&s).unwrap();
        let slow = chase_naive(&d, &s, &budget).unwrap();
        assert!(hom_equivalent(&fast.target, &slow.target));
        assert_eq!(fast.target.rows_of_len("F".into()), 1);
        assert_eq!(fast.target.rows_of_len("G".into()), 1);
    }

    fn ground(rel: &str, args: &[&str]) -> Atom {
        Atom::of(
            rel,
            args.iter().map(|a| Value::konst(a)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn resume_insert_only_matches_rechase() {
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,b). E(b,c). E(c,d).").unwrap();
        let budget = ChaseBudget::default();
        let eng = ChaseEngine::new(&d, &budget).with_provenance(true);
        let prior = eng.run(&s).unwrap();
        let mut delta = SourceDelta::new();
        delta.insert(ground("E", &["d", "e"]));
        let resumed = eng.resume(&prior, &delta).unwrap();
        let rechased = eng.run(&delta.applied(&s)).unwrap();
        assert!(dex_core::isomorphic(&resumed.target, &rechased.target));
        assert!(resumed.stats.validate().is_ok());
        assert_eq!(resumed.stats.atoms_retracted, 0);
        // The new edge extends every closed path ending at d.
        assert!(resumed.stats.atoms_inserted >= 4);
        resumed
            .provenance
            .as_ref()
            .unwrap()
            .verify_justified(&resumed.result)
            .unwrap();
    }

    #[test]
    fn resume_delete_spares_atoms_with_a_second_chain() {
        let d = parse_setting(
            "source { P/1, Q/1 }
             target { T/1, U/1 }
             st {
               P(x) -> T(x);
               Q(x) -> T(x);
             }
             t { T(x) -> U(x); }",
        )
        .unwrap();
        let s = parse_instance("P(a). Q(a). P(b).").unwrap();
        let budget = ChaseBudget::default();
        let eng = ChaseEngine::new(&d, &budget).with_provenance(true);
        let prior = eng.run(&s).unwrap();
        let mut delta = SourceDelta::new();
        delta.delete(ground("P", &["a"]));
        delta.delete(ground("P", &["b"]));
        let resumed = eng.resume(&prior, &delta).unwrap();
        // T(a)/U(a) survive through the Q-chain; T(b)/U(b) die.
        assert!(resumed.target.contains(&ground("T", &["a"])));
        assert!(resumed.target.contains(&ground("U", &["a"])));
        assert!(!resumed.target.contains(&ground("T", &["b"])));
        assert!(!resumed.target.contains(&ground("U", &["b"])));
        assert!(resumed.stats.atoms_retracted >= 2);
        let rechased = eng.run(&delta.applied(&s)).unwrap();
        assert!(dex_core::isomorphic(&resumed.target, &rechased.target));
        resumed
            .provenance
            .as_ref()
            .unwrap()
            .verify_justified(&resumed.result)
            .unwrap();
    }

    #[test]
    fn resume_over_deletes_across_dead_egd_merges() {
        // The documented egd boundary: the prior run merged ⊥1 ↦ c, so
        // F(a,c) carries both the Q-chain and the rekeyed P-chain.
        // Deleting Q(a,c) kills the merge; the P-derived atom must come
        // back as F(a,⊥fresh), not survive as F(a,c).
        let d = parse_setting(
            "source { P/1, Q/2 }
             target { F/2 }
             st {
               P(x) -> exists z . F(x,z);
               Q(x,y) -> F(x,y);
             }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a). Q(a,c).").unwrap();
        let budget = ChaseBudget::default();
        let eng = ChaseEngine::new(&d, &budget).with_provenance(true);
        let prior = eng.run(&s).unwrap();
        assert!(prior.target.contains(&ground("F", &["a", "c"])));
        let mut delta = SourceDelta::new();
        delta.delete(ground("Q", &["a", "c"]));
        let resumed = eng.resume(&prior, &delta).unwrap();
        assert!(!resumed.target.contains(&ground("F", &["a", "c"])));
        assert_eq!(resumed.target.len(), 1);
        assert!(resumed.stats.atoms_rederived >= 1);
        let rechased = eng.run(&delta.applied(&s)).unwrap();
        assert!(dex_core::isomorphic(&resumed.target, &rechased.target));
        // The dead merge left no record behind.
        assert!(resumed.provenance.as_ref().unwrap().merges().is_empty());
        resumed
            .provenance
            .as_ref()
            .unwrap()
            .verify_justified(&resumed.result)
            .unwrap();
    }

    #[test]
    fn resume_mixed_batch_matches_rechase() {
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,b). E(b,c). E(c,d). E(d,e).").unwrap();
        let budget = ChaseBudget::default();
        let eng = ChaseEngine::new(&d, &budget).with_provenance(true);
        let prior = eng.run(&s).unwrap();
        let mut delta = SourceDelta::new();
        delta.delete(ground("E", &["b", "c"]));
        delta.insert(ground("E", &["b", "d"]));
        // Delete + re-insert nets to a no-op; absent delete is dropped.
        delta.delete(ground("E", &["a", "b"]));
        delta.insert(ground("E", &["a", "b"]));
        delta.delete(ground("E", &["z", "z"]));
        let resumed = eng.resume(&prior, &delta).unwrap();
        let rechased = eng.run(&delta.applied(&s)).unwrap();
        assert!(dex_core::isomorphic(&resumed.target, &rechased.target));
        assert!(resumed.stats.validate().is_ok());
        resumed
            .provenance
            .as_ref()
            .unwrap()
            .verify_justified(&resumed.result)
            .unwrap();
    }

    #[test]
    fn resume_without_provenance_falls_back_on_deletions() {
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,b). E(b,c). E(c,d).").unwrap();
        let budget = ChaseBudget::default();
        let eng = ChaseEngine::new(&d, &budget);
        let prior = eng.run(&s).unwrap();
        assert!(prior.provenance.is_none());
        let mut delta = SourceDelta::new();
        delta.delete(ground("E", &["b", "c"]));
        let resumed = eng.resume(&prior, &delta).unwrap();
        let rechased = eng.run(&delta.applied(&s)).unwrap();
        assert!(dex_core::isomorphic(&resumed.target, &rechased.target));
        // The fallback preserves the prior's provenance-lessness.
        assert!(resumed.provenance.is_none());
    }

    #[test]
    fn resume_honors_the_budget_and_leaves_prior_intact() {
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,b). E(b,c). E(c,d). E(d,e).").unwrap();
        let budget = ChaseBudget::default();
        let eng = ChaseEngine::new(&d, &budget).with_provenance(true);
        let prior = eng.run(&s).unwrap();
        let before = prior.result.clone();
        let mut delta = SourceDelta::new();
        delta.insert(ground("E", &["e", "f"]));
        let tight = ChaseBudget::new(1, 8000);
        let starved = ChaseEngine::new(&d, &tight).with_provenance(true);
        let err = starved.resume(&prior, &delta).unwrap_err();
        assert!(matches!(err, ChaseError::BudgetExceeded { .. }));
        // The engine worked on clones; the prior result is untouched.
        assert_eq!(prior.result, before);
    }
}
