//! Structured egd-conflict witnesses: when a chase fails because an egd
//! equates two distinct constants, the failure carries the violating
//! egd, the full trigger assignment, the instantiated premise atoms,
//! and — when the run recorded provenance — each premise's
//! justification chain back to source atoms. The union of those chains'
//! leaves is the *source-atom conflict set*: a subset of the source
//! whose chase already fails, which is what repair search branches on
//! (ten Cate/Halpert/Kolaitis exchange-repairs).

use crate::provenance::{JustificationChain, Provenance};
use dex_core::{Atom, Value};
use dex_logic::{Assignment, Egd, Term};
use dex_obs::JsonValue;
use std::fmt;

/// Why an egd application failed: the trigger that equated two distinct
/// constants, with optional provenance chains tracing each premise back
/// to the σ-part.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictWitness {
    /// The violating egd's name.
    pub egd: String,
    /// Its index in the setting's `egds` order.
    pub egd_index: usize,
    /// The two distinct constants the egd tried to identify.
    pub left: Value,
    /// See `left`.
    pub right: Value,
    /// The trigger assignment, as (variable, value) pairs in the
    /// assignment's sorted order.
    pub assignment: Vec<(String, Value)>,
    /// The instantiated egd body atoms under the trigger assignment.
    pub premises: Vec<Atom>,
    /// Per-premise justification chains back to source atoms, parallel
    /// to `premises`. `None` when the run recorded no provenance or a
    /// premise has no complete chain (e.g. an FO-bodied derivation).
    pub chains: Vec<Option<JustificationChain>>,
    /// The source atoms the chains bottom out in (sorted, deduped).
    /// Chasing this subset of the source alone re-triggers the
    /// conflict; empty unless [`ConflictWitness::grounded`].
    pub conflict_set: Vec<Atom>,
}

impl ConflictWitness {
    /// Builds a witness from the violating trigger alone (no chains).
    pub fn from_trigger(
        egd: &Egd,
        egd_index: usize,
        env: &Assignment,
        left: Value,
        right: Value,
    ) -> ConflictWitness {
        let premises = egd
            .body
            .iter()
            .map(|fa| {
                Atom::new(
                    fa.rel,
                    fa.args
                        .iter()
                        .map(|&t: &Term| env.term(t).expect("egd body match binds all terms"))
                        .collect::<Vec<Value>>(),
                )
            })
            .collect::<Vec<Atom>>();
        let chains = vec![None; premises.len()];
        ConflictWitness {
            egd: egd.name.clone(),
            egd_index,
            left,
            right,
            assignment: env
                .bindings()
                .map(|(v, val)| (v.to_string(), val))
                .collect(),
            premises,
            chains,
            conflict_set: Vec::new(),
        }
    }

    /// Fills the per-premise justification chains and the source-atom
    /// conflict set from a run's recorded provenance.
    pub fn with_provenance(mut self, prov: &Provenance) -> ConflictWitness {
        self.chains = self.premises.iter().map(|p| prov.explain(p)).collect();
        let mut sources: Vec<Atom> = self
            .chains
            .iter()
            .flatten()
            .flat_map(|c| c.source_atoms().into_iter().cloned())
            .collect();
        sources.sort();
        sources.dedup();
        self.conflict_set = sources;
        self
    }

    /// True iff every premise has a chain bottoming out in source atoms
    /// — exactly when `conflict_set` is a genuine failing source subset
    /// that repair search can branch on.
    pub fn grounded(&self) -> bool {
        !self.chains.is_empty()
            && self
                .chains
                .iter()
                .all(|c| c.as_ref().is_some_and(|c| c.ends_in_sources()))
    }

    /// The witness as JSON (machine-readable failure diagnosis).
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::obj()
            .with("egd", JsonValue::str(self.egd.clone()))
            .with("egd_index", JsonValue::uint(self.egd_index as u64))
            .with("left", JsonValue::str(self.left.to_string()))
            .with("right", JsonValue::str(self.right.to_string()))
            .with(
                "assignment",
                JsonValue::Obj(
                    self.assignment
                        .iter()
                        .map(|(var, v)| (var.clone(), JsonValue::str(v.to_string())))
                        .collect(),
                ),
            )
            .with(
                "premises",
                JsonValue::Arr(
                    self.premises
                        .iter()
                        .map(|p| JsonValue::str(p.to_string()))
                        .collect(),
                ),
            )
            .with(
                "chains",
                JsonValue::Arr(
                    self.chains
                        .iter()
                        .map(|c| match c {
                            Some(c) => c.to_json(),
                            None => JsonValue::Null,
                        })
                        .collect(),
                ),
            );
        o.push("grounded", JsonValue::Bool(self.grounded()));
        o.push(
            "conflict_set",
            JsonValue::Arr(
                self.conflict_set
                    .iter()
                    .map(|a| JsonValue::str(a.to_string()))
                    .collect(),
            ),
        );
        o
    }
}

impl fmt::Display for ConflictWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "egd {} failed: cannot identify constants {} and {}",
            self.egd, self.left, self.right
        )?;
        write!(f, "trigger:")?;
        for (var, v) in &self.assignment {
            write!(f, " {var}={v}")?;
        }
        for (i, p) in self.premises.iter().enumerate() {
            writeln!(f)?;
            write!(f, "premise {p}")?;
            match &self.chains[i] {
                Some(chain) => {
                    for line in chain.to_string().lines() {
                        writeln!(f)?;
                        write!(f, "  {line}")?;
                    }
                }
                None => write!(f, " (no recorded justification)")?,
            }
        }
        if !self.conflict_set.is_empty() {
            writeln!(f)?;
            write!(f, "source conflict set: {{")?;
            for (i, a) in self.conflict_set.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::budget::ChaseBudget;
    use crate::engine::ChaseEngine;
    use crate::standard::ChaseError;
    use dex_logic::{parse_instance, parse_setting};

    #[test]
    fn engine_conflict_carries_grounded_witness() {
        let d = parse_setting(
            "source { P/2 }
             target { F/2 }
             st { P(x,y) -> F(x,y); }
             t { key: F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a,b). P(a,c).").unwrap();
        let err = ChaseEngine::new(&d, &ChaseBudget::default())
            .with_provenance(true)
            .run(&s)
            .unwrap_err();
        let ChaseError::EgdConflict { witness } = err else {
            panic!("expected egd conflict");
        };
        assert_eq!(witness.egd, "key");
        assert_eq!(witness.egd_index, 0);
        assert!(witness.left.is_const() && witness.right.is_const());
        assert_eq!(witness.premises.len(), 2);
        assert!(witness.grounded());
        // The conflict set names the two clashing source atoms.
        assert_eq!(witness.conflict_set.len(), 2);
        assert!(witness.conflict_set.iter().all(|a| a.rel.as_str() == "P"));
        // Renders and serialises.
        assert!(witness.to_string().contains("source conflict set"));
        dex_obs::parse(&witness.to_json().dump()).unwrap();
    }

    #[test]
    fn witness_without_provenance_has_no_chains() {
        let d = parse_setting(
            "source { P/2 }
             target { F/2 }
             st { P(x,y) -> F(x,y); }
             t { key: F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a,b). P(a,c).").unwrap();
        let err = ChaseEngine::new(&d, &ChaseBudget::default())
            .run(&s)
            .unwrap_err();
        let ChaseError::EgdConflict { witness } = err else {
            panic!("expected egd conflict");
        };
        assert!(!witness.grounded());
        assert!(witness.conflict_set.is_empty());
        assert!(witness.chains.iter().all(Option::is_none));
        dex_obs::parse(&witness.to_json().dump()).unwrap();
    }
}
