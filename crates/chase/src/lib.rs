//! # dex-chase
//!
//! Chase procedures for data exchange:
//!
//! - the classical restricted chase with tgds and egds ([`standard`]),
//!   which computes canonical universal solutions and detects egd
//!   failures (Section 2);
//! - the α-chase of Hernich & Schweikardt (Definitions 4.1/4.2), in which
//!   each existential value is fixed by a justification through a mapping
//!   `α: J_D → Dom` ([`alpha`]) — the device defining CWA-presolutions.
//!
//! All chases are budgeted ([`budget`]) because general settings can make
//! them run forever (Theorem 6.2).

pub mod alpha;
pub mod budget;
pub mod engine;
pub mod provenance;
pub mod standard;
pub mod stats;
pub mod witness;

pub use alpha::{
    alpha_chase, alpha_chase_naive, alpha_chase_naive_clocked, canonical_presolution, AlphaOutcome,
    AlphaSource, AlphaSuccess, ChaseStep, FreshAlpha, Justification, TableAlpha,
};
pub use budget::{ChaseBudget, ChaseLimitsExt};
pub use engine::ChaseEngine;
pub use provenance::{ChainStep, Derivation, JustificationChain, MergeRecord, Provenance};
pub use standard::{
    canonical_universal_solution, chase, chase_naive, chase_naive_clocked, egd_step, ChaseError,
    ChaseSuccess, EgdRepair,
};
pub use stats::ChaseStats;
pub use witness::ConflictWitness;
