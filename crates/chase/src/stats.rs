//! Observability counters for chase runs.
//!
//! Every chase driver (the delta-driven [`crate::engine::ChaseEngine`]
//! and the retained naive drivers) fills a [`ChaseStats`], threaded
//! through [`crate::ChaseSuccess`] / [`crate::AlphaSuccess`]. The bench
//! harness dumps them into `BENCH_chase.json` and CI asserts
//! [`ChaseStats::validate`] on every smoke run.

/// Counters and phase timings for one chase run. All counters are
/// cumulative over the run; `*_time_ns` are wall-clock nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Tgd applications performed (equals `triggers_fired`).
    pub tgd_steps: usize,
    /// Egd repairs (value merges) performed.
    pub egd_steps: usize,
    /// Body matches examined as potential tgd triggers.
    pub triggers_examined: usize,
    /// Examined triggers that actually fired.
    pub triggers_fired: usize,
    /// Semi-naive fixpoint rounds (0 for the naive drivers).
    pub rounds: usize,
    /// Delta rows handed to the seeded matcher, summed over rounds.
    pub delta_rows_processed: usize,
    /// Largest per-round delta, in rows.
    pub max_round_delta_rows: usize,
    /// Atoms actually added to the instance (inserts that were not
    /// already present).
    pub atoms_inserted: usize,
    /// Rows rewritten in place by egd merges.
    pub rows_rewritten: usize,
    /// Largest instance size observed during the run.
    pub peak_atoms: usize,
    /// Wall time spent searching/applying egds.
    pub egd_time_ns: u128,
    /// Wall time spent searching/applying tgds.
    pub tgd_time_ns: u128,
    /// Wall time for the whole run.
    pub total_time_ns: u128,
}

impl ChaseStats {
    /// Internal consistency invariants; CI fails a bench smoke run on a
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.triggers_fired > self.triggers_examined {
            return Err(format!(
                "triggers fired ({}) > triggers examined ({})",
                self.triggers_fired, self.triggers_examined
            ));
        }
        if self.tgd_steps != self.triggers_fired {
            return Err(format!(
                "tgd steps ({}) != triggers fired ({})",
                self.tgd_steps, self.triggers_fired
            ));
        }
        if self.max_round_delta_rows > self.delta_rows_processed {
            return Err(format!(
                "max round delta ({}) > total delta rows processed ({})",
                self.max_round_delta_rows, self.delta_rows_processed
            ));
        }
        if self.egd_time_ns + self.tgd_time_ns > self.total_time_ns {
            return Err(format!(
                "phase times ({} + {} ns) exceed total time ({} ns)",
                self.egd_time_ns, self.tgd_time_ns, self.total_time_ns
            ));
        }
        Ok(())
    }

    /// A flat JSON object with every counter (hand-rolled: the workspace
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"tgd_steps\":{},\"egd_steps\":{},",
                "\"triggers_examined\":{},\"triggers_fired\":{},",
                "\"rounds\":{},\"delta_rows_processed\":{},",
                "\"max_round_delta_rows\":{},\"atoms_inserted\":{},",
                "\"rows_rewritten\":{},\"peak_atoms\":{},",
                "\"egd_time_ns\":{},\"tgd_time_ns\":{},\"total_time_ns\":{}}}"
            ),
            self.tgd_steps,
            self.egd_steps,
            self.triggers_examined,
            self.triggers_fired,
            self.rounds,
            self.delta_rows_processed,
            self.max_round_delta_rows,
            self.atoms_inserted,
            self.rows_rewritten,
            self.peak_atoms,
            self.egd_time_ns,
            self.tgd_time_ns,
            self.total_time_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_validate() {
        assert!(ChaseStats::default().validate().is_ok());
    }

    #[test]
    fn fired_beyond_examined_is_invalid() {
        let s = ChaseStats {
            triggers_examined: 1,
            triggers_fired: 2,
            tgd_steps: 2,
            ..Default::default()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn phase_times_beyond_total_are_invalid() {
        let s = ChaseStats {
            egd_time_ns: 5,
            tgd_time_ns: 6,
            total_time_ns: 10,
            ..Default::default()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn json_is_flat_and_complete() {
        let s = ChaseStats {
            tgd_steps: 3,
            triggers_fired: 3,
            triggers_examined: 7,
            total_time_ns: 123,
            ..Default::default()
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "tgd_steps",
            "egd_steps",
            "triggers_examined",
            "triggers_fired",
            "rounds",
            "delta_rows_processed",
            "max_round_delta_rows",
            "atoms_inserted",
            "rows_rewritten",
            "peak_atoms",
            "egd_time_ns",
            "tgd_time_ns",
            "total_time_ns",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(j.contains("\"triggers_examined\":7"));
    }
}
