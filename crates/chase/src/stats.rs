//! Observability counters for chase runs.
//!
//! Every chase driver (the delta-driven [`crate::engine::ChaseEngine`]
//! and the retained naive drivers) fills a [`ChaseStats`], threaded
//! through [`crate::ChaseSuccess`] / [`crate::AlphaSuccess`]. The bench
//! harness dumps them into `BENCH_chase.json` and CI asserts
//! [`ChaseStats::validate`] on every smoke run.

/// Counters and phase timings for one chase run. All counters are
/// cumulative over the run; `*_time_ns` are wall-clock nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Tgd applications performed (equals `triggers_fired`).
    pub tgd_steps: usize,
    /// Egd repairs (value merges) performed.
    pub egd_steps: usize,
    /// Body matches examined as potential tgd triggers.
    pub triggers_examined: usize,
    /// Examined triggers that actually fired.
    pub triggers_fired: usize,
    /// Semi-naive fixpoint rounds (0 for the naive drivers).
    pub rounds: usize,
    /// Delta rows handed to the seeded matcher, summed over rounds.
    pub delta_rows_processed: usize,
    /// Largest per-round delta, in rows.
    pub max_round_delta_rows: usize,
    /// Atoms actually added to the instance (inserts that were not
    /// already present).
    pub atoms_inserted: usize,
    /// Rows rewritten in place by egd merges.
    pub rows_rewritten: usize,
    /// Atoms retracted by incremental deletion propagation (0 for
    /// from-scratch runs).
    pub atoms_retracted: usize,
    /// Atoms re-inserted by re-firing triggers after a retraction
    /// over-deleted them (0 for from-scratch runs).
    pub atoms_rederived: usize,
    /// Largest instance size observed during the run.
    pub peak_atoms: usize,
    /// Wall time spent searching/applying egds.
    pub egd_time_ns: u128,
    /// Wall time spent searching/applying tgds.
    pub tgd_time_ns: u128,
    /// Wall time for the whole run.
    pub total_time_ns: u128,
}

impl ChaseStats {
    /// Internal consistency invariants; CI fails a bench smoke run on a
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.triggers_fired > self.triggers_examined {
            return Err(format!(
                "triggers fired ({}) > triggers examined ({})",
                self.triggers_fired, self.triggers_examined
            ));
        }
        if self.tgd_steps != self.triggers_fired {
            return Err(format!(
                "tgd steps ({}) != triggers fired ({})",
                self.tgd_steps, self.triggers_fired
            ));
        }
        if self.max_round_delta_rows > self.delta_rows_processed {
            return Err(format!(
                "max round delta ({}) > total delta rows processed ({})",
                self.max_round_delta_rows, self.delta_rows_processed
            ));
        }
        if self.egd_time_ns + self.tgd_time_ns > self.total_time_ns {
            return Err(format!(
                "phase times ({} + {} ns) exceed total time ({} ns)",
                self.egd_time_ns, self.tgd_time_ns, self.total_time_ns
            ));
        }
        if self.atoms_inserted > self.peak_atoms {
            // Every insert raises the instance to a new size that peak
            // immediately absorbs, and peak starts at the source size.
            return Err(format!(
                "atoms inserted ({}) > peak atoms ({})",
                self.atoms_inserted, self.peak_atoms
            ));
        }
        if self.atoms_rederived > self.atoms_inserted {
            // Re-derivation inserts through the same counted path, so
            // it can never exceed the total insert count.
            return Err(format!(
                "atoms rederived ({}) > atoms inserted ({})",
                self.atoms_rederived, self.atoms_inserted
            ));
        }
        if self.rounds == 0 && self.delta_rows_processed > 0 {
            // Only semi-naive rounds process delta rows; the naive
            // drivers report 0 rounds and must report 0 delta rows.
            return Err(format!(
                "0 rounds but {} delta rows processed",
                self.delta_rows_processed
            ));
        }
        Ok(())
    }

    /// Folds another run's counters into this one. Used by `dex-cwa`'s
    /// parallel enumerator to combine per-replay stats after a fan-out
    /// join; every field merge is commutative and associative, so the
    /// aggregate is independent of worker scheduling. Counters and phase
    /// times sum. `peak_atoms` also sums: the replays ran concurrently,
    /// so the sum of per-run peaks bounds the process-wide peak and
    /// keeps `atoms_inserted <= peak_atoms` valid. `max_round_delta_rows`
    /// takes the max (it is a per-round high-water mark, not a total).
    pub fn merge(&mut self, other: &ChaseStats) {
        self.tgd_steps += other.tgd_steps;
        self.egd_steps += other.egd_steps;
        self.triggers_examined += other.triggers_examined;
        self.triggers_fired += other.triggers_fired;
        self.rounds += other.rounds;
        self.delta_rows_processed += other.delta_rows_processed;
        self.max_round_delta_rows = self.max_round_delta_rows.max(other.max_round_delta_rows);
        self.atoms_inserted += other.atoms_inserted;
        self.rows_rewritten += other.rows_rewritten;
        self.atoms_retracted += other.atoms_retracted;
        self.atoms_rederived += other.atoms_rederived;
        self.peak_atoms += other.peak_atoms;
        self.egd_time_ns += other.egd_time_ns;
        self.tgd_time_ns += other.tgd_time_ns;
        self.total_time_ns += other.total_time_ns;
    }

    /// The counters as a flat JSON object.
    pub fn json_value(&self) -> dex_obs::JsonValue {
        use dex_obs::JsonValue;
        JsonValue::obj()
            .with("tgd_steps", JsonValue::uint(self.tgd_steps as u64))
            .with("egd_steps", JsonValue::uint(self.egd_steps as u64))
            .with(
                "triggers_examined",
                JsonValue::uint(self.triggers_examined as u64),
            )
            .with(
                "triggers_fired",
                JsonValue::uint(self.triggers_fired as u64),
            )
            .with("rounds", JsonValue::uint(self.rounds as u64))
            .with(
                "delta_rows_processed",
                JsonValue::uint(self.delta_rows_processed as u64),
            )
            .with(
                "max_round_delta_rows",
                JsonValue::uint(self.max_round_delta_rows as u64),
            )
            .with(
                "atoms_inserted",
                JsonValue::uint(self.atoms_inserted as u64),
            )
            .with(
                "rows_rewritten",
                JsonValue::uint(self.rows_rewritten as u64),
            )
            .with(
                "atoms_retracted",
                JsonValue::uint(self.atoms_retracted as u64),
            )
            .with(
                "atoms_rederived",
                JsonValue::uint(self.atoms_rederived as u64),
            )
            .with("peak_atoms", JsonValue::uint(self.peak_atoms as u64))
            .with("egd_time_ns", JsonValue::UInt(self.egd_time_ns))
            .with("tgd_time_ns", JsonValue::UInt(self.tgd_time_ns))
            .with("total_time_ns", JsonValue::UInt(self.total_time_ns))
    }

    /// [`ChaseStats::json_value`] serialised (the shape `BENCH_chase.json`
    /// embeds).
    pub fn to_json(&self) -> String {
        self.json_value().dump()
    }

    /// Exports the counters as a view into a metrics registry under
    /// `prefix` (e.g. `prefix = "chase"` yields `chase.rounds`), with
    /// phase times recorded into log₂ latency histograms.
    pub fn export_metrics(&self, registry: &mut dex_obs::MetricsRegistry, prefix: &str) {
        let counters: [(&str, usize); 11] = [
            ("tgd_steps", self.tgd_steps),
            ("egd_steps", self.egd_steps),
            ("triggers_examined", self.triggers_examined),
            ("triggers_fired", self.triggers_fired),
            ("rounds", self.rounds),
            ("delta_rows_processed", self.delta_rows_processed),
            ("max_round_delta_rows", self.max_round_delta_rows),
            ("atoms_inserted", self.atoms_inserted),
            ("rows_rewritten", self.rows_rewritten),
            ("atoms_retracted", self.atoms_retracted),
            ("atoms_rederived", self.atoms_rederived),
        ];
        for (name, v) in counters {
            registry.inc(&format!("{prefix}.{name}"), v as u128);
        }
        registry.set_gauge(&format!("{prefix}.peak_atoms"), self.peak_atoms as i128);
        registry.observe(
            &format!("{prefix}.egd_time_ns"),
            u64::try_from(self.egd_time_ns).unwrap_or(u64::MAX),
        );
        registry.observe(
            &format!("{prefix}.tgd_time_ns"),
            u64::try_from(self.tgd_time_ns).unwrap_or(u64::MAX),
        );
        registry.observe(
            &format!("{prefix}.total_time_ns"),
            u64::try_from(self.total_time_ns).unwrap_or(u64::MAX),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_validate() {
        assert!(ChaseStats::default().validate().is_ok());
    }

    #[test]
    fn fired_beyond_examined_is_invalid() {
        let s = ChaseStats {
            triggers_examined: 1,
            triggers_fired: 2,
            tgd_steps: 2,
            ..Default::default()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn phase_times_beyond_total_are_invalid() {
        let s = ChaseStats {
            egd_time_ns: 5,
            tgd_time_ns: 6,
            total_time_ns: 10,
            ..Default::default()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn inserted_beyond_peak_is_invalid() {
        let s = ChaseStats {
            atoms_inserted: 5,
            peak_atoms: 4,
            ..Default::default()
        };
        assert!(s.validate().is_err());
        let ok = ChaseStats {
            atoms_inserted: 4,
            peak_atoms: 4,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn rederived_beyond_inserted_is_invalid() {
        let s = ChaseStats {
            atoms_rederived: 3,
            atoms_inserted: 2,
            peak_atoms: 2,
            ..Default::default()
        };
        assert!(s.validate().is_err());
        let ok = ChaseStats {
            atoms_rederived: 2,
            atoms_inserted: 2,
            peak_atoms: 2,
            atoms_retracted: 7,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn delta_rows_without_rounds_is_invalid() {
        let s = ChaseStats {
            rounds: 0,
            delta_rows_processed: 3,
            max_round_delta_rows: 3,
            ..Default::default()
        };
        assert!(s.validate().is_err());
        let ok = ChaseStats {
            rounds: 1,
            delta_rows_processed: 3,
            max_round_delta_rows: 3,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn merge_preserves_validity_and_is_order_independent() {
        let a = ChaseStats {
            tgd_steps: 3,
            triggers_fired: 3,
            triggers_examined: 7,
            rounds: 2,
            delta_rows_processed: 10,
            max_round_delta_rows: 6,
            atoms_inserted: 3,
            peak_atoms: 12,
            egd_time_ns: 5,
            tgd_time_ns: 7,
            total_time_ns: 20,
            ..Default::default()
        };
        let b = ChaseStats {
            tgd_steps: 1,
            triggers_fired: 1,
            triggers_examined: 4,
            egd_steps: 2,
            rounds: 1,
            delta_rows_processed: 4,
            max_round_delta_rows: 4,
            atoms_inserted: 1,
            rows_rewritten: 2,
            peak_atoms: 5,
            egd_time_ns: 1,
            tgd_time_ns: 2,
            total_time_ns: 9,
            ..Default::default()
        };
        assert!(a.validate().is_ok() && b.validate().is_ok());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert!(ab.validate().is_ok());
        assert_eq!(ab.tgd_steps, 4);
        assert_eq!(ab.rounds, 3);
        assert_eq!(ab.max_round_delta_rows, 6); // max, not sum
        assert_eq!(ab.peak_atoms, 17); // sum: replays run concurrently
        assert_eq!(ab.total_time_ns, 29);
        // Merging the default is the identity.
        let mut id = a.clone();
        id.merge(&ChaseStats::default());
        assert_eq!(id, a);
    }

    #[test]
    fn json_value_parses_and_matches_dump() {
        let s = ChaseStats {
            tgd_steps: 2,
            triggers_fired: 2,
            triggers_examined: 3,
            peak_atoms: 9,
            atoms_inserted: 4,
            total_time_ns: u128::from(u64::MAX) + 7,
            ..Default::default()
        };
        let parsed = dex_obs::parse(&s.to_json()).unwrap();
        assert_eq!(parsed, s.json_value());
        // u128 counters survive without rounding through f64.
        assert_eq!(
            parsed.get("total_time_ns").unwrap().as_u128(),
            Some(u128::from(u64::MAX) + 7)
        );
    }

    #[test]
    fn export_metrics_views_the_counters() {
        let s = ChaseStats {
            tgd_steps: 2,
            triggers_fired: 2,
            triggers_examined: 3,
            rounds: 1,
            peak_atoms: 9,
            atoms_inserted: 4,
            total_time_ns: 1000,
            ..Default::default()
        };
        let mut reg = dex_obs::MetricsRegistry::new();
        s.export_metrics(&mut reg, "chase");
        assert_eq!(reg.counter("chase.triggers_examined"), 3);
        assert_eq!(reg.gauge("chase.peak_atoms"), Some(9));
        assert_eq!(reg.histogram("chase.total_time_ns").unwrap().count(), 1);
    }

    #[test]
    fn json_is_flat_and_complete() {
        let s = ChaseStats {
            tgd_steps: 3,
            triggers_fired: 3,
            triggers_examined: 7,
            total_time_ns: 123,
            ..Default::default()
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "tgd_steps",
            "egd_steps",
            "triggers_examined",
            "triggers_fired",
            "rounds",
            "delta_rows_processed",
            "max_round_delta_rows",
            "atoms_inserted",
            "rows_rewritten",
            "atoms_retracted",
            "atoms_rederived",
            "peak_atoms",
            "egd_time_ns",
            "tgd_time_ns",
            "total_time_ns",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(j.contains("\"triggers_examined\":7"));
    }
}
