//! The α-chase (Definitions 4.1 and 4.2) — the paper's controlled chase
//! in which every value introduced for an existential variable is fixed by
//! a *justification* `(d, ū, v̄, z)` through a mapping `α: J_D → Dom`.
//!
//! `J_D` is infinite, so `α` is represented lazily as an [`AlphaSource`]
//! that is queried per encountered justification:
//!
//! - [`FreshAlpha`] memoizes a fresh null per justification — its
//!   successful chases produce the *canonical CWA-presolution*;
//! - [`TableAlpha`] consults an explicit finite table first (used to
//!   replay the paper's α₁/α₂/α₃ of Example 4.4 verbatim) and falls back
//!   to fresh nulls.
//!
//! By Lemma 4.5, for a fixed `α` either some (equivalently: every) α-chase
//! of a ground instance succeeds with one common result, or some α-chase
//! is failing or infinite. The driver below uses a deterministic strategy
//! (egds eagerly, tgds in declaration order) and reports the three
//! outcomes as success / failing / budget-exceeded.

use crate::budget::ChaseBudget;
use crate::engine::ChaseEngine;
use crate::stats::ChaseStats;
use dex_core::govern::{Clock, Interrupt};
use dex_core::{Atom, Instance, NullGen, Value};
use dex_logic::{Setting, Tgd};
use std::collections::HashMap;
use std::fmt;

/// A potential justification `(d, ū, v̄, z)` for introducing a value:
/// tgd index (in `Σ_st` then `Σ_t` order), the values `ū` of the frontier
/// variables `x̄`, the values `v̄` of the remaining body variables `ȳ`, and
/// the index of the existential variable `z` in `z̄`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Justification {
    pub dep: usize,
    pub frontier: Vec<Value>,
    pub body_only: Vec<Value>,
    pub z_index: usize,
}

impl fmt::Debug for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(d#{}, {:?}, {:?}, z{})",
            self.dep,
            self.frontier,
            self.body_only,
            self.z_index + 1
        )
    }
}

/// A lazily-evaluated `α: J_D → Dom`.
pub trait AlphaSource {
    /// The value `α(j)`. Must be deterministic per justification within a
    /// chase run (requirement CWA2: one justification, one value). The
    /// current chase instance is passed so that enumeration strategies can
    /// offer "reuse an existing value" choices; plain sources ignore it.
    fn value(&mut self, j: &Justification, inst: &Instance) -> Value;
}

/// Assigns a memoized fresh null per justification.
pub struct FreshAlpha {
    gen: NullGen,
    memo: HashMap<Justification, Value>,
}

impl FreshAlpha {
    pub fn new(gen: NullGen) -> FreshAlpha {
        FreshAlpha {
            gen,
            memo: HashMap::new(),
        }
    }

    /// Starts fresh nulls above everything in `inst`.
    pub fn above(inst: &Instance) -> FreshAlpha {
        FreshAlpha::new(NullGen::above(inst.active_domain().iter()))
    }

    /// Number of justifications assigned so far.
    pub fn assigned(&self) -> usize {
        self.memo.len()
    }
}

impl AlphaSource for FreshAlpha {
    fn value(&mut self, j: &Justification, _inst: &Instance) -> Value {
        if let Some(&v) = self.memo.get(j) {
            return v;
        }
        let v = self.gen.fresh_value();
        self.memo.insert(j.clone(), v);
        v
    }
}

/// Consults an explicit table first, falling back to fresh nulls for
/// justifications outside the table (the paper's `*` entries).
pub struct TableAlpha {
    table: HashMap<Justification, Value>,
    fallback: FreshAlpha,
}

impl TableAlpha {
    /// Builds a table α. Fresh fallback nulls are minted above every null
    /// mentioned in the table so they never collide.
    pub fn new(entries: impl IntoIterator<Item = (Justification, Value)>) -> TableAlpha {
        let table: HashMap<Justification, Value> = entries.into_iter().collect();
        let gen = NullGen::above(table.values());
        TableAlpha {
            table,
            fallback: FreshAlpha::new(gen),
        }
    }
}

impl AlphaSource for TableAlpha {
    fn value(&mut self, j: &Justification, inst: &Instance) -> Value {
        if let Some(&v) = self.table.get(j) {
            return v;
        }
        self.fallback.value(j, inst)
    }
}

/// One recorded chase step, for displaying runs like Example 4.4's
/// `I₀, I₁, …` sequences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseStep {
    /// A tgd was α-applied, adding `added` (atoms not previously present).
    TgdApplied { dep: String, added: Vec<Atom> },
    /// An egd was applied, replacing `from` by `to` everywhere.
    EgdApplied { dep: String, from: Value, to: Value },
}

impl fmt::Display for ChaseStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseStep::TgdApplied { dep, added } => {
                write!(f, "α-apply {dep}: +{{")?;
                for (i, a) in added.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "}}")
            }
            ChaseStep::EgdApplied { dep, from, to } => {
                write!(f, "apply {dep}: {from} ↦ {to}")
            }
        }
    }
}

/// A successful α-chase.
#[derive(Clone, Debug)]
pub struct AlphaSuccess {
    /// The result over `σ ∪ τ`.
    pub result: Instance,
    /// The target part: the CWA-presolution `T` with `S ∪ T` the result.
    pub target: Instance,
    pub steps: usize,
    pub trace: Vec<ChaseStep>,
    /// Observability counters for the run.
    pub stats: ChaseStats,
    /// Per-atom derivations, when the run was started with
    /// [`crate::ChaseEngine::with_provenance`] (the naive driver never
    /// records any).
    pub provenance: Option<crate::provenance::Provenance>,
}

/// The three possible outcomes of a (budgeted) α-chase run.
#[derive(Clone, Debug)]
pub enum AlphaOutcome {
    /// Definition 4.2(1): finite, result satisfies Σ, no tgd α-applicable.
    Success(AlphaSuccess),
    /// Definition 4.2(2): an egd tried to identify distinct constants.
    /// The witness is the same structured diagnosis the standard chase
    /// reports (trigger assignment, premises, provenance chains).
    Failing {
        witness: Box<crate::witness::ConflictWitness>,
        steps: usize,
    },
    /// Budget exhausted — with a correct budget for the setting class this
    /// indicates an infinite α-chase (e.g. an ever-growing one).
    BudgetExceeded { steps: usize, atoms: usize },
    /// The chase revisited a previous instance state: under the
    /// deterministic strategy it is provably infinite (e.g. Example 4.4's
    /// α₃, which loops through egd-merge / re-apply forever).
    CycleDetected { steps: usize },
    /// The run was stopped by its governor (deadline or cancellation)
    /// before reaching any of the outcomes above. Unlike
    /// `BudgetExceeded`, this says nothing about the chase itself — a
    /// re-run with a later deadline may yet succeed or fail.
    Interrupted(Interrupt),
}

impl AlphaOutcome {
    pub fn success(self) -> Option<AlphaSuccess> {
        match self {
            AlphaOutcome::Success(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_success(&self) -> bool {
        matches!(self, AlphaOutcome::Success(_))
    }

    pub fn is_failing(&self) -> bool {
        matches!(self, AlphaOutcome::Failing { .. })
    }
}

/// Runs an α-chase of the ground `source` with the dependencies of
/// `setting` under the given `α`, using the delta-driven [`ChaseEngine`].
pub fn alpha_chase(
    setting: &Setting,
    source: &Instance,
    alpha: &mut dyn AlphaSource,
    budget: &ChaseBudget,
) -> AlphaOutcome {
    ChaseEngine::new(setting, budget).run_alpha(source, alpha)
}

/// The naive reference α-chase driver: a full trigger rescan per step and
/// clone-per-repair egd handling. Retained as the differential-testing
/// and ablation baseline for [`alpha_chase`]; same outcome contract.
pub fn alpha_chase_naive(
    setting: &Setting,
    source: &Instance,
    alpha: &mut dyn AlphaSource,
    budget: &ChaseBudget,
) -> AlphaOutcome {
    alpha_chase_naive_clocked(setting, source, alpha, budget, &Clock::real())
}

/// [`alpha_chase_naive`] with an explicit time source, so deadline
/// behaviour and phase timings are testable with a mock clock.
pub fn alpha_chase_naive_clocked(
    setting: &Setting,
    source: &Instance,
    alpha: &mut dyn AlphaSource,
    budget: &ChaseBudget,
    clock: &Clock,
) -> AlphaOutcome {
    debug_assert!(source.is_ground(), "α-chase starts from ground instances");
    let gov = budget.governor(clock);
    let t_total = clock.now_ns();
    let mut stats = ChaseStats::default();
    let sigma_part = source.clone();
    let tgds: Vec<&Tgd> = setting.all_tgds().collect();
    let st_count = setting.st_tgds.len();
    let mut inst = source.clone();
    stats.peak_atoms = inst.len();
    let mut steps = 0usize;
    let mut trace: Vec<ChaseStep> = Vec::new();
    let mut seen_states: std::collections::HashSet<u64> = std::collections::HashSet::new();
    loop {
        if let Err(i) = gov.force_check() {
            return AlphaOutcome::Interrupted(i);
        }
        if steps >= budget.max_steps {
            return AlphaOutcome::BudgetExceeded {
                steps,
                atoms: inst.len(),
            };
        }
        // Cycle detection: the chase is a deterministic function of the
        // current instance (given α), so a repeated state proves it runs
        // forever.
        {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            inst.sorted_atoms().hash(&mut h);
            if !seen_states.insert(h.finish()) {
                return AlphaOutcome::CycleDetected { steps };
            }
        }
        // Egd application (Definition 4.1). Applied eagerly; by Lemma 4.5
        // the strategy does not affect the outcome.
        let t_phase = clock.now_ns();
        let egd_result = crate::standard::egd_step(setting, &inst);
        stats.egd_time_ns += (clock.now_ns() - t_phase) as u128;
        match egd_result {
            Err(crate::standard::ChaseError::EgdConflict { witness }) => {
                return AlphaOutcome::Failing { witness, steps };
            }
            // `egd_step` performs a single bounded repair pass, so it can
            // never exhaust a step budget or trip a governor itself; still,
            // propagate rather than panic if its contract ever widens.
            Err(crate::standard::ChaseError::BudgetExceeded { steps, atoms }) => {
                return AlphaOutcome::BudgetExceeded { steps, atoms };
            }
            Err(crate::standard::ChaseError::Interrupted(i)) => {
                return AlphaOutcome::Interrupted(i);
            }
            Ok(Some(repair)) => {
                trace.push(ChaseStep::EgdApplied {
                    dep: repair.egd,
                    from: repair.from,
                    to: repair.to,
                });
                inst = repair.instance;
                steps += 1;
                stats.egd_steps += 1;
                continue;
            }
            Ok(None) => {}
        }
        // Find an α-applicable tgd trigger (condition (1) of Def 4.1).
        let t_phase = clock.now_ns();
        let mut fired: Option<(String, Vec<Atom>)> = None;
        'search: for (idx, tgd) in tgds.iter().enumerate() {
            let body_inst = if idx < st_count { &sigma_part } else { &inst };
            for env in tgd.body.matches(body_inst) {
                if let Err(i) = gov.check() {
                    return AlphaOutcome::Interrupted(i);
                }
                stats.triggers_examined += 1;
                let frontier: Vec<Value> = tgd
                    .frontier()
                    .iter()
                    .map(|&v| env.get(v).expect("body match binds frontier"))
                    .collect();
                let body_only: Vec<Value> = tgd
                    .body_only_vars()
                    .iter()
                    .map(|&v| env.get(v).expect("body match binds body vars"))
                    .collect();
                let mut full = env.clone();
                for (zi, &z) in tgd.exist_vars.iter().enumerate() {
                    let j = Justification {
                        dep: idx,
                        frontier: frontier.clone(),
                        body_only: body_only.clone(),
                        z_index: zi,
                    };
                    full.bind(z, alpha.value(&j, &inst));
                }
                let head_atoms = tgd.instantiate_head(&full);
                if head_atoms.iter().any(|a| !inst.contains(a)) {
                    fired = Some((tgd.name.clone(), head_atoms));
                    break 'search;
                }
            }
        }
        stats.tgd_time_ns += (clock.now_ns() - t_phase) as u128;
        match fired {
            Some((dep, atoms)) => {
                let added: Vec<Atom> = atoms
                    .iter()
                    .filter(|a| !inst.contains(a))
                    .cloned()
                    .collect();
                for a in atoms {
                    if inst.insert(a) {
                        stats.atoms_inserted += 1;
                        stats.peak_atoms = stats.peak_atoms.max(inst.len());
                        if inst.len() > budget.max_atoms {
                            return AlphaOutcome::BudgetExceeded {
                                steps,
                                atoms: inst.len(),
                            };
                        }
                    }
                }
                trace.push(ChaseStep::TgdApplied { dep, added });
                steps += 1;
                stats.tgd_steps += 1;
                stats.triggers_fired += 1;
            }
            None => {
                // No tgd α-applicable and egds hold: success. (Every body
                // match has its ᾱ-head present, so all tgds are satisfied.)
                stats.total_time_ns = (clock.now_ns() - t_total) as u128;
                let target = inst.difference(&sigma_part);
                return AlphaOutcome::Success(AlphaSuccess {
                    result: inst,
                    target,
                    steps,
                    trace,
                    stats,
                    provenance: None,
                });
            }
        }
    }
}

/// Runs the α-chase with memoized fresh nulls; a success yields the
/// *canonical CWA-presolution* for `source` under `setting`.
pub fn canonical_presolution(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> AlphaOutcome {
    let mut alpha = FreshAlpha::above(source);
    alpha_chase(setting, source, &mut alpha, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::isomorphic;
    use dex_logic::{parse_instance, parse_setting};

    fn example_2_1() -> Setting {
        parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }
             t {
               d3: F(y,x) -> exists z . G(x,z);
               d4: F(x,y) & F(x,z) -> y = z;
             }",
        )
        .unwrap()
    }

    fn s_star() -> Instance {
        parse_instance("M(a,b). N(a,b). N(a,c).").unwrap()
    }

    fn c(name: &str) -> Value {
        Value::konst(name)
    }

    fn n(id: u32) -> Value {
        Value::null(id)
    }

    /// Justification helper for the Example 2.1 setting:
    /// dep indices are d1=0, d2=1 (s-t), d3=2 (target).
    fn j(dep: usize, frontier: &[Value], body_only: &[Value], z: usize) -> Justification {
        Justification {
            dep,
            frontier: frontier.to_vec(),
            body_only: body_only.to_vec(),
            z_index: z,
        }
    }

    /// Example 4.4, α₁: a successful α-chase whose result is
    /// S ∪ {E(a,b), E(a,_1), E(a,_2), F(a,_3), G(_3,_4)} = S ∪ T₂.
    #[test]
    fn example_4_4_alpha1_succeeds_with_t2() {
        let d = example_2_1();
        let mut alpha = TableAlpha::new([
            (j(1, &[c("a")], &[c("b")], 0), n(1)),
            (j(1, &[c("a")], &[c("b")], 1), n(3)),
            (j(1, &[c("a")], &[c("c")], 0), n(2)),
            (j(1, &[c("a")], &[c("c")], 1), n(3)),
            (j(2, &[n(3)], &[c("a")], 0), n(4)),
        ]);
        let out = alpha_chase(&d, &s_star(), &mut alpha, &ChaseBudget::default());
        let success = out.success().expect("α₁-chase succeeds");
        let t2 = parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap();
        assert_eq!(success.target, t2);
        assert!(d.is_solution(&s_star(), &success.target));
    }

    /// Example 4.4, α₂: a failing α-chase — F(a,c) and F(a,d) cannot be
    /// identified by the egd d4.
    #[test]
    fn example_4_4_alpha2_fails() {
        let d = example_2_1();
        let mut alpha = TableAlpha::new([
            (j(1, &[c("a")], &[c("b")], 0), c("b")),
            (j(1, &[c("a")], &[c("b")], 1), c("c")),
            (j(1, &[c("a")], &[c("c")], 0), c("b")),
            (j(1, &[c("a")], &[c("c")], 1), c("d")),
        ]);
        let out = alpha_chase(&d, &s_star(), &mut alpha, &ChaseBudget::default());
        match out {
            AlphaOutcome::Failing { witness, .. } => {
                assert_eq!(witness.egd, "d4");
                assert!(witness.left.is_const() && witness.right.is_const());
                // The trigger assignment and premises are reported.
                assert!(!witness.assignment.is_empty());
                assert_eq!(witness.premises.len(), 2);
            }
            other => panic!("expected failing chase, got {other:?}"),
        }
    }

    /// Example 4.4, α₃: every α₃-chase loops forever — the egd d4 keeps
    /// merging the two F-nulls, which re-enables d2, and so on.
    #[test]
    fn example_4_4_alpha3_loops_forever() {
        let d = example_2_1();
        let mut alpha = TableAlpha::new([
            (j(1, &[c("a")], &[c("b")], 0), c("b")),
            (j(1, &[c("a")], &[c("b")], 1), n(3)),
            (j(1, &[c("a")], &[c("c")], 0), c("b")),
            (j(1, &[c("a")], &[c("c")], 1), n(4)),
            (j(2, &[n(3)], &[c("a")], 0), n(1)),
            (j(2, &[n(4)], &[c("a")], 0), n(2)),
        ]);
        let out = alpha_chase(&d, &s_star(), &mut alpha, &ChaseBudget::probe());
        assert!(matches!(out, AlphaOutcome::CycleDetected { .. }));
    }

    /// The §7.2 remark in action: Example 2.1 is richly acyclic, yet the
    /// *fresh-per-justification* α has no finite α-chase — d4 keeps
    /// merging the two F-nulls, which re-enables d2's (a,c) trigger whose
    /// fixed ᾱ-value was renamed away. Only an α that shares the value
    /// across the two justifications (like the paper's α₁) succeeds.
    #[test]
    fn fresh_alpha_diverges_on_example_2_1_because_of_the_egd() {
        let d = example_2_1();
        let out = canonical_presolution(&d, &s_star(), &ChaseBudget::probe());
        assert!(matches!(out, AlphaOutcome::CycleDetected { .. }));
    }

    /// Without the egd d4, the fresh-α chase is Libkin's canonical
    /// CWA-presolution construction and succeeds.
    #[test]
    fn canonical_presolution_without_egd_succeeds() {
        let d = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }
             t {
               d3: F(y,x) -> exists z . G(x,z);
             }",
        )
        .unwrap();
        let out = canonical_presolution(&d, &s_star(), &ChaseBudget::default());
        let success = out.success().expect("fresh-α chase succeeds without egds");
        assert!(d.is_solution(&s_star(), &success.target));
        let expected =
            parse_instance("E(a,b). E(a,_1). F(a,_2). E(a,_3). F(a,_4). G(_2,_5). G(_4,_6).")
                .unwrap();
        assert!(isomorphic(&success.target, &expected));
    }

    #[test]
    fn fresh_alpha_memoizes_per_justification() {
        let mut alpha = FreshAlpha::new(NullGen::new());
        let just = j(1, &[c("a")], &[c("b")], 0);
        let empty = Instance::new();
        let v1 = alpha.value(&just, &empty);
        let v2 = alpha.value(&just, &empty);
        assert_eq!(v1, v2);
        let other = j(1, &[c("a")], &[c("b")], 1);
        assert_ne!(alpha.value(&other, &empty), v1);
        assert_eq!(alpha.assigned(), 2);
    }

    #[test]
    fn trace_records_steps() {
        // Replay α₁: the trace lists the tgd applications of Example 4.4's
        // chase C (no egd ever fires because both F-values coincide).
        let d = example_2_1();
        let mut alpha = TableAlpha::new([
            (j(1, &[c("a")], &[c("b")], 0), n(1)),
            (j(1, &[c("a")], &[c("b")], 1), n(3)),
            (j(1, &[c("a")], &[c("c")], 0), n(2)),
            (j(1, &[c("a")], &[c("c")], 1), n(3)),
            (j(2, &[n(3)], &[c("a")], 0), n(4)),
        ]);
        let out = alpha_chase(&d, &s_star(), &mut alpha, &ChaseBudget::default());
        let success = out.success().unwrap();
        assert_eq!(success.trace.len(), success.steps);
        assert!(success
            .trace
            .iter()
            .all(|s| matches!(s, ChaseStep::TgdApplied { .. })));
        assert!(success
            .trace
            .iter()
            .any(|s| matches!(s, ChaseStep::TgdApplied { dep, .. } if dep == "d3")));
    }

    #[test]
    fn alpha_pointing_at_existing_atoms_blocks_firing() {
        // If α sends d2's z1/z2 for (a,b) to values already forming the
        // head, the trigger is never α-applicable, shrinking the result.
        let d = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }",
        )
        .unwrap();
        let s = parse_instance("M(a,b). N(a,b).").unwrap();
        // α(d2,a,b,z1) = b: head E(a,b) present via d1; z2 fresh.
        let mut alpha = TableAlpha::new([(j(1, &[c("a")], &[c("b")], 0), c("b"))]);
        let out = alpha_chase(&d, &s, &mut alpha, &ChaseBudget::default());
        let success = out.success().unwrap();
        // Target: E(a,b) plus one F-atom; no E(a,null).
        assert_eq!(success.target.rows_of_len("E".into()), 1);
        assert_eq!(success.target.rows_of_len("F".into()), 1);
    }

    #[test]
    fn empty_source_succeeds_immediately() {
        let d = example_2_1();
        let out = canonical_presolution(&d, &Instance::new(), &ChaseBudget::default());
        let success = out.success().unwrap();
        assert!(success.target.is_empty());
        assert_eq!(success.steps, 0);
    }
}
