//! The standard (restricted) chase with tgds and egds (Section 2, as in
//! [FKMP05]): from a ground source instance it computes the canonical
//! universal solution, fails on an egd equating distinct constants, or
//! exceeds its budget (necessarily so for non-terminating settings).
//!
//! The restricted chase fires a tgd trigger only when the head is not
//! already satisfiable in the current instance (condition (2) of the
//! paper's Remark 4.3) — the classical procedure that terminates in
//! polynomially many steps on weakly acyclic settings.

use crate::budget::ChaseBudget;
use crate::engine::ChaseEngine;
use crate::stats::ChaseStats;
use crate::witness::ConflictWitness;
use dex_core::govern::{Clock, Interrupt};
use dex_core::{Instance, NullGen, Value};
use dex_logic::{Assignment, Setting, Tgd, Var};
use std::fmt;

/// Why a chase run did not produce a solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// An egd tried to equate two distinct constants — no solution
    /// exists. The witness carries the violating trigger and (when the
    /// run recorded provenance) the source-atom conflict set.
    EgdConflict { witness: Box<ConflictWitness> },
    /// The step/atom budget was exhausted; the chase may be
    /// non-terminating. (Enforced exactly, unlike `Interrupted`.)
    BudgetExceeded { steps: usize, atoms: usize },
    /// The budget's deadline passed or its cancel flag was raised.
    Interrupted(Interrupt),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::EgdConflict { witness } => {
                write!(
                    f,
                    "egd {} failed: cannot identify constants {} and {}",
                    witness.egd, witness.left, witness.right
                )
            }
            ChaseError::BudgetExceeded { steps, atoms } => {
                write!(
                    f,
                    "chase budget exceeded after {steps} steps ({atoms} atoms)"
                )
            }
            ChaseError::Interrupted(i) => write!(f, "chase {i}"),
        }
    }
}

impl std::error::Error for ChaseError {}

impl From<Interrupt> for ChaseError {
    fn from(i: Interrupt) -> ChaseError {
        ChaseError::Interrupted(i)
    }
}

/// A successful chase run.
#[derive(Clone, Debug)]
pub struct ChaseSuccess {
    /// The full result over `σ ∪ τ`.
    pub result: Instance,
    /// The target part (the canonical universal solution).
    pub target: Instance,
    /// Number of chase steps performed.
    pub steps: usize,
    /// Observability counters for the run.
    pub stats: ChaseStats,
    /// Per-atom derivations, when the run was started with
    /// [`crate::ChaseEngine::with_provenance`] (the naive drivers never
    /// record any).
    pub provenance: Option<crate::provenance::Provenance>,
}

/// One applied egd repair: the new instance and what was renamed.
#[derive(Clone, Debug)]
pub struct EgdRepair {
    pub instance: Instance,
    pub egd: String,
    pub from: Value,
    pub to: Value,
}

/// Resolves one egd violation. Returns:
/// - `Ok(Some(repair))` if a violation was found and repaired,
/// - `Ok(None)` if no violation exists,
/// - `Err(..)` if a violation equates distinct constants.
pub fn egd_step(setting: &Setting, inst: &Instance) -> Result<Option<EgdRepair>, ChaseError> {
    for (ei, egd) in setting.egds.iter().enumerate() {
        if let Some(env) = egd.first_violation(inst).as_ref() {
            let l = env.get(egd.lhs).expect("egd body binds lhs");
            let r = env.get(egd.rhs).expect("egd body binds rhs");
            let (from, to) = match (l, r) {
                (Value::Const(_), Value::Const(_)) => {
                    return Err(ChaseError::EgdConflict {
                        witness: Box::new(ConflictWitness::from_trigger(egd, ei, env, l, r)),
                    })
                }
                // Replace the null by the other value; when both are nulls
                // the larger label is replaced by the smaller (footnote 4).
                (Value::Null(a), Value::Null(b)) => {
                    if a > b {
                        (l, r)
                    } else {
                        (r, l)
                    }
                }
                (Value::Null(_), Value::Const(_)) => (l, r),
                (Value::Const(_), Value::Null(_)) => (r, l),
            };
            return Ok(Some(EgdRepair {
                instance: inst.rename_value(from, to),
                egd: egd.name.clone(),
                from,
                to,
            }));
        }
    }
    Ok(None)
}

/// One restricted-chase tgd pass: finds the first trigger whose head is
/// not yet satisfied and fires it with fresh nulls. `body_inst` is where
/// the body is matched (`σ`-part for s-t tgds, the full instance for
/// target tgds); heads are checked and inserted in `inst`, with the atom
/// budget enforced per insertion so a wide head cannot overshoot by more
/// than one atom.
fn fire_first_unsatisfied(
    tgd: &Tgd,
    body_inst: &Instance,
    inst: &mut Instance,
    nulls: &mut NullGen,
    budget: &ChaseBudget,
    steps: usize,
    stats: &mut ChaseStats,
) -> Result<bool, ChaseError> {
    for env in tgd.body.matches(body_inst) {
        stats.triggers_examined += 1;
        if !tgd.head_holds(inst, &env) {
            let mut full = env.clone();
            for &z in &tgd.exist_vars {
                full.bind(z, nulls.fresh_value());
            }
            for atom in tgd.instantiate_head(&full) {
                if inst.insert(atom) {
                    stats.atoms_inserted += 1;
                    stats.peak_atoms = stats.peak_atoms.max(inst.len());
                    if inst.len() > budget.max_atoms {
                        return Err(ChaseError::BudgetExceeded {
                            steps,
                            atoms: inst.len(),
                        });
                    }
                }
            }
            stats.triggers_fired += 1;
            stats.tgd_steps += 1;
            return Ok(true);
        }
    }
    Ok(false)
}

/// Runs the standard restricted chase of `source` with the dependencies of
/// `setting`, using the delta-driven [`ChaseEngine`].
pub fn chase(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> Result<ChaseSuccess, ChaseError> {
    ChaseEngine::new(setting, budget).run(source)
}

/// The naive reference driver: a full trigger rescan per step and
/// clone-per-repair egd handling. Retained as the differential-testing
/// and ablation baseline for [`chase`]; same outcome contract.
pub fn chase_naive(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> Result<ChaseSuccess, ChaseError> {
    chase_naive_clocked(setting, source, budget, &Clock::real())
}

/// [`chase_naive`] with an explicit [`Clock`]: the single time source for
/// both the budget's deadline checks and the `ChaseStats` phase timings.
pub fn chase_naive_clocked(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
    clock: &Clock,
) -> Result<ChaseSuccess, ChaseError> {
    let gov = budget.governor(clock);
    let t_total = clock.now_ns();
    let mut stats = ChaseStats::default();
    let sigma_part = source.clone();
    let mut inst = source.clone();
    stats.peak_atoms = inst.len();
    let mut nulls = NullGen::above(source.active_domain().iter());
    let mut steps = 0usize;
    loop {
        gov.force_check()?;
        if steps >= budget.max_steps {
            return Err(ChaseError::BudgetExceeded {
                steps,
                atoms: inst.len(),
            });
        }
        // Egds first: they only shrink the instance.
        let t_phase = clock.now_ns();
        let repair = egd_step(setting, &inst)?;
        stats.egd_time_ns += (clock.now_ns() - t_phase) as u128;
        if let Some(repair) = repair {
            inst = repair.instance;
            steps += 1;
            stats.egd_steps += 1;
            continue;
        }
        // Then tgds, s-t before target, first unsatisfied trigger.
        let t_phase = clock.now_ns();
        let mut fired = false;
        for tgd in &setting.st_tgds {
            if fire_first_unsatisfied(
                tgd,
                &sigma_part,
                &mut inst,
                &mut nulls,
                budget,
                steps,
                &mut stats,
            )? {
                fired = true;
                break;
            }
        }
        if !fired {
            // Find the trigger against the immutable instance, then apply.
            let trigger = setting.t_tgds.iter().find_map(|tgd| {
                let envs = tgd.body.matches(&inst);
                stats.triggers_examined += envs.len();
                envs.into_iter()
                    .find(|env| !tgd.head_holds(&inst, env))
                    .map(|env| (tgd, env))
            });
            if let Some((tgd, mut env)) = trigger {
                for &z in &tgd.exist_vars {
                    env.bind(z, nulls.fresh_value());
                }
                for atom in tgd.instantiate_head(&env) {
                    if inst.insert(atom) {
                        stats.atoms_inserted += 1;
                        stats.peak_atoms = stats.peak_atoms.max(inst.len());
                        if inst.len() > budget.max_atoms {
                            return Err(ChaseError::BudgetExceeded {
                                steps,
                                atoms: inst.len(),
                            });
                        }
                    }
                }
                stats.triggers_fired += 1;
                stats.tgd_steps += 1;
                fired = true;
            }
        }
        stats.tgd_time_ns += (clock.now_ns() - t_phase) as u128;
        if fired {
            steps += 1;
            continue;
        }
        // Fixpoint: no egd violation, no unsatisfied tgd trigger.
        stats.total_time_ns = (clock.now_ns() - t_total) as u128;
        let target = inst.difference(&sigma_part);
        return Ok(ChaseSuccess {
            result: inst,
            target,
            steps,
            stats,
            provenance: None,
        });
    }
}

/// The canonical universal solution for `source` under `setting`, if the
/// chase succeeds within budget.
pub fn canonical_universal_solution(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> Result<Instance, ChaseError> {
    chase(setting, source, budget).map(|s| s.target)
}

/// Fires a tgd trigger *obliviously* for every body match regardless of
/// head satisfaction, used by tooling that needs the naive/oblivious chase
/// for comparison (one fresh tuple per body match). Returns the number of
/// firings.
pub fn oblivious_round(
    tgd: &Tgd,
    body_inst: &Instance,
    inst: &mut Instance,
    nulls: &mut NullGen,
    already: &mut std::collections::HashSet<Vec<(Var, Value)>>,
) -> usize {
    let mut fired = 0usize;
    for env in tgd.body.matches(body_inst) {
        let key: Vec<(Var, Value)> = env.bindings().collect();
        if !already.insert(key) {
            continue;
        }
        let mut full: Assignment = env.clone();
        for &z in &tgd.exist_vars {
            full.bind(z, nulls.fresh_value());
        }
        for atom in tgd.instantiate_head(&full) {
            inst.insert(atom);
        }
        fired += 1;
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::{hom_equivalent, Atom};
    use dex_logic::{parse_instance, parse_setting};

    fn example_2_1() -> Setting {
        parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2, G/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }
             t {
               d3: F(y,x) -> exists z . G(x,z);
               d4: F(x,y) & F(x,z) -> y = z;
             }",
        )
        .unwrap()
    }

    fn s_star() -> Instance {
        parse_instance("M(a,b). N(a,b). N(a,c).").unwrap()
    }

    #[test]
    fn example_2_1_chase_succeeds_with_solution() {
        let d = example_2_1();
        let s = s_star();
        let out = chase(&d, &s, &ChaseBudget::default()).unwrap();
        assert!(d.is_solution(&s, &out.target));
        // The canonical solution is hom-equivalent to T2 of the paper.
        let t2 = parse_instance("E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).").unwrap();
        assert!(hom_equivalent(&out.target, &t2));
    }

    #[test]
    fn egds_merge_f_successors() {
        // N(a,b) and N(a,c) both create F(a,·) nulls; d4 merges them.
        let d = example_2_1();
        let out = chase(&d, &s_star(), &ChaseBudget::default()).unwrap();
        assert_eq!(out.target.rows_of_len("F".into()), 1);
    }

    #[test]
    fn egd_conflict_on_constants_fails() {
        let d = parse_setting(
            "source { P/2 }
             target { F/2 }
             st { P(x,y) -> F(x,y); }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a,b). P(a,c).").unwrap();
        let err = chase(&d, &s, &ChaseBudget::default()).unwrap_err();
        assert!(matches!(err, ChaseError::EgdConflict { .. }));
    }

    #[test]
    fn egd_null_const_merge_succeeds() {
        let d = parse_setting(
            "source { P/1, Q/2 }
             target { F/2 }
             st {
               P(x) -> exists z . F(x,z);
               Q(x,y) -> F(x,y);
             }
             t { F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap();
        let s = parse_instance("P(a). Q(a,b).").unwrap();
        let out = chase(&d, &s, &ChaseBudget::default()).unwrap();
        // The null created for P(a) is merged with b.
        assert_eq!(out.target.len(), 1);
        assert!(out
            .target
            .contains(&Atom::of("F", vec![Value::konst("a"), Value::konst("b")])));
    }

    #[test]
    fn restricted_chase_does_not_refire_satisfied_triggers() {
        // P(x) -> exists z. E(x,z) with E already derivable once: one null.
        let d = parse_setting(
            "source { P/1 }
             target { E/2 }
             st { P(x) -> exists z . E(x,z); }",
        )
        .unwrap();
        let s = parse_instance("P(a).").unwrap();
        let out = chase(&d, &s, &ChaseBudget::default()).unwrap();
        assert_eq!(out.target.len(), 1);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn non_terminating_setting_exceeds_budget() {
        // E(x,y) → ∃z E(y,z) on a cycle-free source grows forever under
        // the *oblivious* chase but the restricted chase terminates...
        // Use the genuinely diverging variant with two relations:
        // A(x) → ∃z B(x,z); B(x,z) → A(z).
        let d = parse_setting(
            "source { S/1 }
             target { A/1, B/2 }
             st { S(x) -> A(x); }
             t {
               A(x) -> exists z . B(x,z);
               B(x,z) -> A(z);
             }",
        )
        .unwrap();
        let s = parse_instance("S(a).").unwrap();
        let err = chase(&d, &s, &ChaseBudget::probe()).unwrap_err();
        assert!(matches!(err, ChaseError::BudgetExceeded { .. }));
    }

    #[test]
    fn restricted_chase_terminates_on_self_loop_source() {
        // E'(x,y) → ∃z E'(y,z): with a self-loop E'(a,a) in the source the
        // head is already satisfied — restricted chase stops immediately.
        let d = parse_setting(
            "source { E/2 }
             target { Ep/2 }
             st { E(x,y) -> Ep(x,y); }
             t { Ep(x,y) -> exists z . Ep(y,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,a).").unwrap();
        let out = chase(&d, &s, &ChaseBudget::default()).unwrap();
        assert_eq!(out.target.len(), 1);
    }

    #[test]
    fn full_tgds_compute_datalog_closure() {
        // Transitive closure via a full target tgd.
        let d = parse_setting(
            "source { E/2 }
             target { T/2 }
             st { E(x,y) -> T(x,y); }
             t { T(x,y) & T(y,z) -> T(x,z); }",
        )
        .unwrap();
        let s = parse_instance("E(a,b). E(b,c). E(c,d).").unwrap();
        let out = chase(&d, &s, &ChaseBudget::default()).unwrap();
        assert_eq!(out.target.len(), 6); // all pairs (i<j) of the path
        assert!(out
            .target
            .contains(&Atom::of("T", vec![Value::konst("a"), Value::konst("d")])));
    }

    #[test]
    fn empty_source_has_empty_solution() {
        let d = example_2_1();
        let out = chase(&d, &Instance::new(), &ChaseBudget::default()).unwrap();
        assert!(out.target.is_empty());
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn oblivious_round_fires_once_per_body_match() {
        // The oblivious chase creates one head per body match regardless
        // of satisfaction — on the no-target-deps fragment of Example 2.1
        // it coincides with the fresh-α canonical presolution.
        let d = parse_setting(
            "source { M/2, N/2 }
             target { E/2, F/2 }
             st {
               d1: M(x1,x2) -> E(x1,x2);
               d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
             }",
        )
        .unwrap();
        let s = parse_instance("M(a,b). N(a,b). N(a,c).").unwrap();
        let mut inst = s.clone();
        let mut nulls = dex_core::NullGen::new();
        let mut seen = std::collections::HashSet::new();
        let mut fired = 0;
        for tgd in &d.st_tgds {
            fired += oblivious_round(tgd, &s, &mut inst, &mut nulls, &mut seen);
        }
        assert_eq!(fired, 3); // one M-trigger + two N-triggers
        let target = inst.difference(&s);
        assert_eq!(target.len(), 5); // E(a,b), 2×E(a,·), 2×F(a,·)
                                     // Re-running fires nothing (memoized triggers).
        let again: usize = d
            .st_tgds
            .iter()
            .map(|t| oblivious_round(t, &s, &mut inst, &mut nulls, &mut seen))
            .sum();
        assert_eq!(again, 0);
        // Matches the fresh-α canonical presolution up to renaming.
        let pre = crate::alpha::canonical_presolution(&d, &s, &ChaseBudget::default())
            .success()
            .unwrap();
        assert!(dex_core::isomorphic(&target, &pre.target));
    }

    #[test]
    fn atom_budget_enforced_at_insertion_time() {
        // A single wide-head firing may overshoot the atom budget by at
        // most one atom (the insert that trips the check), in both the
        // delta engine and the naive driver. Before insertion-time
        // enforcement, one firing of this 8-atom head blew past a budget
        // of 2 by 7 atoms unchecked.
        let d = parse_setting(
            "source { P/1 }
             target { Q1/1, Q2/1, Q3/1, Q4/1, Q5/1, Q6/1, Q7/1, Q8/1 }
             st {
               P(x) -> Q1(x) & Q2(x) & Q3(x) & Q4(x)
                     & Q5(x) & Q6(x) & Q7(x) & Q8(x);
             }",
        )
        .unwrap();
        let s = parse_instance("P(a).").unwrap();
        let budget = ChaseBudget::new(100, 2);
        for (which, result) in [
            ("engine", chase(&d, &s, &budget)),
            ("naive", chase_naive(&d, &s, &budget)),
        ] {
            match result.unwrap_err() {
                ChaseError::BudgetExceeded { atoms, .. } => assert!(
                    atoms <= budget.max_atoms + 1,
                    "{which}: overshoot to {atoms} atoms (budget {})",
                    budget.max_atoms
                ),
                other => panic!("{which}: expected budget error, got {other:?}"),
            }
        }
    }

    #[test]
    fn naive_and_engine_agree_on_example_2_1() {
        let d = example_2_1();
        let s = s_star();
        let fast = chase(&d, &s, &ChaseBudget::default()).unwrap();
        let slow = chase_naive(&d, &s, &ChaseBudget::default()).unwrap();
        assert!(hom_equivalent(&fast.target, &slow.target));
        assert!(fast.stats.validate().is_ok());
        assert!(slow.stats.validate().is_ok());
    }

    #[test]
    fn chase_result_is_universal_maps_into_other_solutions() {
        let d = example_2_1();
        let s = s_star();
        let out = chase(&d, &s, &ChaseBudget::default()).unwrap();
        // T1 from the paper is a solution; the canonical solution must map
        // into it.
        let t1 = parse_instance("E(a,b). E(a,_1). E(c,_2). F(a,d). G(d,_3).").unwrap();
        assert!(d.is_solution(&s, &t1));
        assert!(dex_core::has_homomorphism(&out.target, &t1));
    }
}
