//! Provenance-guided enumeration of ⊆-maximal repairs.
//!
//! # The search
//!
//! A *repair* of a source `S` under a setting `D` is a ⊆-maximal
//! `S' ⊆ S` whose chase succeeds. Consistency is downward-closed (a
//! CWA-solution for `S'` is one for any `S'' ⊆ S'`), so the removal
//! sets `S \ S'` of the repairs are exactly the *minimal hitting sets*
//! of the family of minimal inconsistent subsets of `S` — Reiter's
//! diagnosis duality. The engine runs Reiter's HS-tree breadth-first
//! by removal-set size:
//!
//! - chase the candidate `S \ R`; on success, `R` hits every conflict
//!   and (by BFS order plus superset pruning) is minimal — emit the
//!   repair with its cached chase result;
//! - on an egd conflict, branch on the witness's source-atom conflict
//!   set: any repair's removal set must contain one of those atoms.
//!   The conflict set is sound because the justification chains derive
//!   the clash from exactly those source atoms, so chasing them alone
//!   fails too. When a chain is broken (FO-bodied st-tgds have no atom
//!   decomposition) the engine falls back to branching on every kept
//!   atom — complete, just unguided.
//!
//! Candidates of one level are re-chased in parallel through a
//! [`Pool`] with per-candidate cost hints; results are consumed in
//! submission order and the governor is ticked once per candidate, so
//! fault injection and interrupts are deterministic for any thread
//! count. Because BFS finishes level `k-1` before level `k` and
//! same-level successes cannot dominate each other, every repair
//! emitted before an interrupt is genuinely maximal — a sound partial.
//!
//! Superset pruning runs twice: once at child-generation time against
//! the successes recorded so far, and once more on the assembled next
//! level. The second pass is load-bearing — a child generated before a
//! same-level sibling succeeds is not caught by the first pass, and by
//! downward closure it would chase cleanly and surface as a
//! non-maximal pseudo-repair.

use dex_chase::{ChaseBudget, ChaseEngine, ChaseError, ChaseSuccess};
use dex_core::govern::{Clock, Governor, Interrupt};
use dex_core::{Atom, Cost, Instance, Pool};
use dex_logic::Setting;
use dex_obs::{EventKind, JsonValue, Tracer};
use std::collections::{HashMap, HashSet};

/// One ⊆-maximal repair: the kept source subset, what was removed, and
/// the cached chase of the kept subset.
#[derive(Clone, Debug)]
pub struct Repair {
    /// The repaired source `S' ⊆ S` (chases cleanly).
    pub kept: Instance,
    /// The removed atoms `S \ S'`, sorted.
    pub removed: Vec<Atom>,
    /// The successful chase of `kept`, cached for answering.
    pub chase: ChaseSuccess,
}

/// Counters for one repair search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Candidates whose chase was actually run.
    pub candidates_chased: usize,
    /// Failing candidates that yielded a grounded conflict set.
    pub conflicts_extracted: usize,
    /// Failing candidates whose witness was not grounded (FO bodies),
    /// forcing the branch-on-everything fallback.
    pub ungrounded_fallbacks: usize,
    /// Candidates skipped because their removal set was a superset of
    /// an already-accepted repair's (cannot be maximal).
    pub pruned_superset: usize,
    /// Candidates skipped because the same removal set was already
    /// generated along another branch.
    pub pruned_duplicate: usize,
    /// Candidates whose chase exhausted its budget (undecided; the
    /// outcome is marked incomplete).
    pub budget_exhausted: usize,
    /// The deepest explored removal-set size.
    pub max_level: usize,
}

impl RepairStats {
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .with(
                "candidates_chased",
                JsonValue::uint(self.candidates_chased as u64),
            )
            .with(
                "conflicts_extracted",
                JsonValue::uint(self.conflicts_extracted as u64),
            )
            .with(
                "ungrounded_fallbacks",
                JsonValue::uint(self.ungrounded_fallbacks as u64),
            )
            .with(
                "pruned_superset",
                JsonValue::uint(self.pruned_superset as u64),
            )
            .with(
                "pruned_duplicate",
                JsonValue::uint(self.pruned_duplicate as u64),
            )
            .with(
                "budget_exhausted",
                JsonValue::uint(self.budget_exhausted as u64),
            )
            .with("max_level", JsonValue::uint(self.max_level as u64))
    }
}

/// The result of a repair search.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repairs found, in BFS order (fewest removals first, then by
    /// removal-set index order). Complete iff `complete`.
    pub repairs: Vec<Repair>,
    pub stats: RepairStats,
    /// True iff the search ran to exhaustion: the repairs are *all*
    /// maximal repairs. False after an interrupt or an undecided
    /// (budget-exhausted) candidate — the repairs listed are still each
    /// genuinely maximal, but others may exist.
    pub complete: bool,
    /// The interrupt that stopped the search, if one did.
    pub interrupt: Option<Interrupt>,
}

impl RepairOutcome {
    /// Cross-checks the outcome against its defining invariants:
    /// every repair is a subinstance of `source`, its chase succeeded,
    /// and no repair's kept set contains another's.
    pub fn validate(&self, source: &Instance) -> Result<(), String> {
        for (i, r) in self.repairs.iter().enumerate() {
            if !r.kept.is_subinstance_of(source) {
                return Err(format!("repair {i} is not a subset of the source"));
            }
            if r.kept.len() + r.removed.len() != source.len() {
                return Err(format!("repair {i} kept+removed ≠ source size"));
            }
        }
        for (i, a) in self.repairs.iter().enumerate() {
            for (j, b) in self.repairs.iter().enumerate() {
                if i != j && a.kept.is_subinstance_of(&b.kept) {
                    return Err(format!("repair {i} is contained in repair {j}"));
                }
            }
        }
        Ok(())
    }

    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .with("repairs", JsonValue::uint(self.repairs.len() as u64))
            .with("complete", JsonValue::Bool(self.complete))
            .with("stats", self.stats.to_json())
    }
}

/// Governed, provenance-guided repair search for one setting + budget.
pub struct RepairEngine<'a> {
    setting: &'a Setting,
    budget: ChaseBudget,
    pool: Pool,
    tracer: Tracer,
    clock: Clock,
}

impl<'a> RepairEngine<'a> {
    pub fn new(setting: &'a Setting, budget: &ChaseBudget) -> RepairEngine<'a> {
        RepairEngine {
            setting,
            budget: budget.clone(),
            pool: Pool::seq(),
            tracer: Tracer::off(),
            clock: Clock::real(),
        }
    }

    /// Re-chases candidates of each BFS level through `pool` (the
    /// answers are identical for any thread count).
    pub fn with_pool(mut self, pool: Pool) -> RepairEngine<'a> {
        self.pool = pool;
        self
    }

    /// Attaches a tracer for repair-search events.
    pub fn with_tracer(mut self, tracer: Tracer) -> RepairEngine<'a> {
        self.tracer = tracer;
        self
    }

    /// Substitutes the time source for trace timestamps.
    pub fn with_clock(mut self, clock: Clock) -> RepairEngine<'a> {
        self.clock = clock;
        self
    }

    fn emit(&self, kind: EventKind) {
        self.tracer.emit(self.clock.now_ns(), kind);
    }

    /// All ⊆-maximal repairs of `source`, ungoverned.
    pub fn repairs(&self, source: &Instance) -> RepairOutcome {
        self.repairs_governed(source, &Governor::unlimited())
    }

    /// All ⊆-maximal repairs of `source` under `gov`. On interrupt the
    /// outcome is a sound partial: every listed repair is maximal and
    /// chaseable, `complete` is false.
    pub fn repairs_governed(&self, source: &Instance, gov: &Governor) -> RepairOutcome {
        let mut repairs = Vec::new();
        let outcome = self.for_each_repair_governed(source, gov, |r| {
            repairs.push(r.clone());
            true
        });
        RepairOutcome { repairs, ..outcome }
    }

    /// Streaming variant: calls `visit` on each repair as it is
    /// accepted; a `false` return stops the search (the returned
    /// outcome is then marked incomplete and carries no repairs — the
    /// caller saw them). Useful for serving the first repair fast.
    pub fn for_each_repair_governed(
        &self,
        source: &Instance,
        gov: &Governor,
        mut visit: impl FnMut(&Repair) -> bool,
    ) -> RepairOutcome {
        let atoms: Vec<Atom> = source.sorted_atoms();
        let index_of: HashMap<&Atom, usize> =
            atoms.iter().enumerate().map(|(i, a)| (a, i)).collect();
        let n = atoms.len();
        let mut stats = RepairStats::default();
        let mut complete = true;
        let mut interrupt = None;
        // Removal sets (sorted index vectors) of accepted repairs.
        let mut success_removals: Vec<Vec<usize>> = Vec::new();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        if self.tracer.enabled() {
            self.emit(EventKind::RepairSearchStarted { source_atoms: n });
        }

        // BFS frontier: removal sets of size `level` still to chase.
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
        seen.insert(Vec::new());
        let mut level = 0usize;
        'search: while !frontier.is_empty() {
            stats.max_level = level;
            if let Err(i) = gov.force_check() {
                complete = false;
                interrupt = Some(i);
                break 'search;
            }
            // Span per BFS level; leaks open if the governor interrupts
            // mid-level (the analyzer treats that like a truncated trace).
            let sp_level = self.tracer.span("hs_level", self.clock.now_ns());
            // Chase the whole level in parallel; chase cost scales with
            // the kept-instance size, which is uniform across the level.
            let cost = Cost::EstimateNs(20_000u64.saturating_mul((n.max(1) - level) as u64));
            let results: Vec<Result<ChaseSuccess, ChaseError>> =
                self.pool.map(&frontier, cost, |_, removal| {
                    let kept = Instance::from_atoms(
                        atoms
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| !removal.contains(i))
                            .map(|(_, a)| a.clone()),
                    );
                    ChaseEngine::new(self.setting, &self.budget)
                        .with_provenance(true)
                        .run(&kept)
                });
            let mut next: Vec<Vec<usize>> = Vec::new();
            for (removal, result) in frontier.iter().zip(results) {
                // One governor tick per candidate, in submission order:
                // fault injection trips at the same candidate for every
                // thread count.
                if let Err(i) = gov.check() {
                    complete = false;
                    interrupt = Some(i);
                    break 'search;
                }
                stats.candidates_chased += 1;
                match result {
                    Ok(chase) => {
                        if self.tracer.enabled() {
                            self.emit(EventKind::RepairCandidateChased {
                                removed: removal.len(),
                                outcome: "success".into(),
                            });
                            self.emit(EventKind::RepairFound {
                                removed: removal.len(),
                                kept: n - removal.len(),
                            });
                        }
                        let removed: Vec<Atom> =
                            removal.iter().map(|&i| atoms[i].clone()).collect();
                        let kept = Instance::from_atoms(
                            atoms
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| !removal.contains(i))
                                .map(|(_, a)| a.clone()),
                        );
                        success_removals.push(removal.clone());
                        let repair = Repair {
                            kept,
                            removed,
                            chase,
                        };
                        if !visit(&repair) {
                            complete = false;
                            break 'search;
                        }
                    }
                    Err(ChaseError::EgdConflict { witness }) => {
                        if self.tracer.enabled() {
                            self.emit(EventKind::RepairCandidateChased {
                                removed: removal.len(),
                                outcome: "conflict".into(),
                            });
                        }
                        // Branch atoms: the provenance-extracted source
                        // conflict set, or every kept atom if ungrounded.
                        let branch: Vec<usize> = if witness.grounded() {
                            stats.conflicts_extracted += 1;
                            witness
                                .conflict_set
                                .iter()
                                .filter_map(|a| index_of.get(a).copied())
                                .collect()
                        } else {
                            stats.ungrounded_fallbacks += 1;
                            (0..n).filter(|i| !removal.contains(i)).collect()
                        };
                        for b in branch {
                            let mut child = removal.clone();
                            let pos = child.binary_search(&b).unwrap_err();
                            child.insert(pos, b);
                            if success_removals.iter().any(|s| is_subset(s, &child)) {
                                stats.pruned_superset += 1;
                                continue;
                            }
                            if !seen.insert(child.clone()) {
                                stats.pruned_duplicate += 1;
                                continue;
                            }
                            next.push(child);
                        }
                    }
                    Err(ChaseError::BudgetExceeded { .. }) => {
                        if self.tracer.enabled() {
                            self.emit(EventKind::RepairCandidateChased {
                                removed: removal.len(),
                                outcome: "budget".into(),
                            });
                        }
                        // Undecided candidate: without its verdict the
                        // repair set cannot be certified complete, and
                        // there is no conflict set to branch on.
                        stats.budget_exhausted += 1;
                        complete = false;
                    }
                    Err(ChaseError::Interrupted(i)) => {
                        complete = false;
                        interrupt = Some(i);
                        break 'search;
                    }
                }
            }
            // Deterministic child order: BFS explores removal sets in
            // lexicographic index order within each level.
            next.sort();
            next.dedup();
            // A child generated before a same-level sibling succeeded
            // was never checked against that success; consistency is
            // downward-closed, so such a child would chase cleanly and
            // be emitted as a non-maximal pseudo-repair. Re-filter the
            // whole level against every success recorded so far.
            next.retain(|child| {
                if success_removals.iter().any(|s| is_subset(s, child)) {
                    stats.pruned_superset += 1;
                    false
                } else {
                    true
                }
            });
            frontier = next;
            sp_level.close(self.clock.now_ns());
            level += 1;
        }

        if self.tracer.enabled() {
            self.emit(EventKind::RepairSearchCompleted {
                repairs: success_removals.len(),
                candidates: stats.candidates_chased,
                complete,
            });
        }
        RepairOutcome {
            repairs: Vec::new(),
            stats,
            complete,
            interrupt,
        }
    }
}

/// True iff sorted `a` ⊆ sorted `b`.
fn is_subset(a: &[usize], b: &[usize]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.any(|y| y == x))
}

/// The naive exponential baseline: chases every subset of the source by
/// decreasing size and keeps the successes not contained in an earlier
/// success. Returns the kept instances (same set as
/// [`RepairEngine::repairs`], in some order) and the number of chases
/// performed — the denominator of the provenance-guided pruning margin
/// recorded in `BENCH_repair.json`. Only usable at small sizes.
pub fn naive_repairs(
    setting: &Setting,
    source: &Instance,
    budget: &ChaseBudget,
) -> (Vec<Instance>, usize) {
    let atoms: Vec<Atom> = source.sorted_atoms();
    let n = atoms.len();
    assert!(
        n <= 20,
        "naive_repairs is exponential; {n} atoms is too many"
    );
    let mut masks: Vec<u32> = (0..(1u32 << n)).collect();
    // Decreasing size: maximality by "no accepted superset" is then a
    // linear scan over earlier successes.
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    let mut accepted_masks: Vec<u32> = Vec::new();
    let mut repairs = Vec::new();
    let mut chased = 0usize;
    for mask in masks {
        if accepted_masks.iter().any(|&a| a & mask == mask) {
            continue; // subset of an accepted repair: not maximal
        }
        let kept = Instance::from_atoms(
            atoms
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| a.clone()),
        );
        chased += 1;
        if dex_chase::chase(setting, &kept, budget).is_ok() {
            accepted_masks.push(mask);
            repairs.push(kept);
        }
    }
    (repairs, chased)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::isomorphic;
    use dex_logic::{parse_instance, parse_setting};

    fn keyed() -> Setting {
        parse_setting(
            "source { P/2, R/2 }
             target { F/2, G/2 }
             st {
               dP: P(x,y) -> F(x,y);
               dR: R(x,y) -> G(x,y);
             }
             t { key: F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap()
    }

    #[test]
    fn consistent_source_has_identity_repair() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(c,d). R(a,b).").unwrap();
        let out = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&s);
        assert!(out.complete);
        assert_eq!(out.repairs.len(), 1);
        assert_eq!(out.repairs[0].kept, s);
        assert!(out.repairs[0].removed.is_empty());
        assert_eq!(out.stats.candidates_chased, 1);
        out.validate(&s).unwrap();
    }

    #[test]
    fn two_way_key_conflict_has_two_repairs() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). R(u,v).").unwrap();
        let out = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&s);
        assert!(out.complete);
        assert_eq!(out.repairs.len(), 2);
        for r in &out.repairs {
            // Each repair drops exactly one of the clashing P-atoms and
            // keeps the untouched R-atom.
            assert_eq!(r.removed.len(), 1);
            assert_eq!(r.removed[0].rel.as_str(), "P");
            assert!(r.kept.contains(&Atom::of(
                "R",
                vec![dex_core::Value::konst("u"), dex_core::Value::konst("v")]
            )));
        }
        out.validate(&s).unwrap();
    }

    #[test]
    fn crossed_conflicts_multiply() {
        // Two independent clashing keys: 2 × 2 repairs.
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). P(d,e). P(d,f).").unwrap();
        let out = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&s);
        assert!(out.complete);
        assert_eq!(out.repairs.len(), 4);
        for r in &out.repairs {
            assert_eq!(r.removed.len(), 2);
            assert_eq!(r.kept.len(), 2);
        }
        out.validate(&s).unwrap();
    }

    #[test]
    fn engine_matches_naive_baseline() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). P(a,d). R(u,v). P(w,x).").unwrap();
        let out = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&s);
        let (naive, naive_chased) = naive_repairs(&d, &s, &ChaseBudget::default());
        assert_eq!(out.repairs.len(), naive.len());
        for r in &out.repairs {
            assert!(
                naive.iter().any(|k| *k == r.kept),
                "engine repair missing from naive: {:?}",
                r.removed
            );
        }
        // The provenance-guided search chases strictly fewer candidates.
        assert!(
            out.stats.candidates_chased < naive_chased,
            "guided {} !< naive {}",
            out.stats.candidates_chased,
            naive_chased
        );
        out.validate(&s).unwrap();
    }

    #[test]
    fn parallel_pool_gives_identical_outcome() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). P(d,e). P(d,f). R(u,v).").unwrap();
        let seq = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&s);
        for threads in [2usize, 8] {
            let par = RepairEngine::new(&d, &ChaseBudget::default())
                .with_pool(Pool::new(threads).with_threshold_ns(0))
                .repairs(&s);
            assert_eq!(par.repairs.len(), seq.repairs.len());
            for (a, b) in par.repairs.iter().zip(&seq.repairs) {
                assert_eq!(a.kept, b.kept);
                assert_eq!(a.removed, b.removed);
                assert!(isomorphic(&a.chase.target, &b.chase.target));
            }
            assert_eq!(par.stats, seq.stats);
        }
    }

    #[test]
    fn overlapping_conflicts_emit_only_maximal_repairs() {
        // Two overlapping minimal conflict sets: {P(a,b), P(a,c)} via
        // the F-key and {P(a,c), R(c,q)} via the G-key. At level 1 the
        // candidate dropping P(a,b) fails on the G-key and spawns the
        // child {P(a,b), P(a,c)} *before* its sibling (drop P(a,c))
        // succeeds, so generation-time pruning misses it; without the
        // level re-filter the child chases cleanly at level 2 and the
        // non-maximal kept set {R(c,q)} is emitted.
        let d = parse_setting(
            "source { P/2, R/2 }
             target { F/2, G/2 }
             st {
               dF: P(x,y) -> F(x,y);
               dG: P(x,y) -> G(y,x);
               dR: R(x,y) -> G(x,y);
             }
             t {
               kF: F(x,y) & F(x,z) -> y = z;
               kG: G(x,y) & G(x,z) -> y = z;
             }",
        )
        .unwrap();
        let s = parse_instance("P(a,b). P(a,c). R(c,q).").unwrap();
        let out = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&s);
        assert!(out.complete);
        out.validate(&s).unwrap();
        // Exactly the hitting-set duals of the two conflicts: keep
        // {P(a,b), R(c,q)} (remove P(a,c)) or keep {P(a,c)} alone.
        assert_eq!(out.repairs.len(), 2);
        let (naive, _) = naive_repairs(&d, &s, &ChaseBudget::default());
        assert_eq!(naive.len(), 2);
        for r in &out.repairs {
            assert!(
                naive.iter().any(|k| *k == r.kept),
                "engine repair missing from naive: {:?}",
                r.removed
            );
        }
    }

    #[test]
    fn governed_interrupt_yields_sound_partial() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). P(d,e). P(d,f).").unwrap();
        let full = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&s);
        for fuel in 1u64..8 {
            let gov = Governor::unlimited().with_fuel(fuel);
            let out = RepairEngine::new(&d, &ChaseBudget::default()).repairs_governed(&s, &gov);
            if out.complete {
                assert_eq!(out.repairs.len(), full.repairs.len());
            } else {
                assert!(out.interrupt.is_some());
                // Every emitted repair is one of the true repairs.
                for r in &out.repairs {
                    assert!(full.repairs.iter().any(|f| f.kept == r.kept));
                }
            }
            out.validate(&s).unwrap();
        }
    }

    #[test]
    fn streaming_visitor_can_stop_early() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). P(d,e). P(d,f).").unwrap();
        let mut seen = 0usize;
        let out = RepairEngine::new(&d, &ChaseBudget::default()).for_each_repair_governed(
            &s,
            &Governor::unlimited(),
            |_| {
                seen += 1;
                seen < 2
            },
        );
        assert_eq!(seen, 2);
        assert!(!out.complete);
    }

    #[test]
    fn empty_source_is_its_own_repair() {
        let d = keyed();
        let out = RepairEngine::new(&d, &ChaseBudget::default()).repairs(&Instance::new());
        assert!(out.complete);
        assert_eq!(out.repairs.len(), 1);
        assert!(out.repairs[0].kept.is_empty());
    }
}
