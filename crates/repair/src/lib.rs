//! # dex-repair
//!
//! Exchange-repairs for inconsistent sources (ten Cate, Halpert &
//! Kolaitis, *Exchange-Repairs: Managing Inconsistency in Data
//! Exchange*): when the chase of a source fails because an egd equates
//! two distinct constants, answer queries over the ⊆-maximal subsets
//! of the source that *do* admit a CWA-solution instead of hard-failing.
//!
//! - [`engine`] enumerates the maximal repairs with a provenance-guided
//!   hitting-set search (Reiter's HS-tree over the conflict sets that
//!   [`dex_chase::ConflictWitness`] extracts from each failing chase),
//!   governed and parallel;
//! - [`answer`] computes XR-certain answers — the intersection of
//!   certain answers across all repairs — as a fifth answering mode
//!   next to the four CWA semantics.

pub mod answer;
pub mod engine;

pub use answer::{xr_certain_answers, XrEngine, XrError};
pub use engine::{naive_repairs, Repair, RepairEngine, RepairOutcome, RepairStats};
