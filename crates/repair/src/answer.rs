//! XR-certain answers: the fifth answering mode next to the four CWA
//! semantics. A tuple is XR-certain iff it is a certain answer over
//! *every* ⊆-maximal repair of the source — the exchange-repair
//! certain answers of ten Cate/Halpert/Kolaitis, computed by
//! intersecting [`Semantics::Certain`] across the repairs that
//! [`RepairEngine`] enumerates. For a consistent source the single
//! repair is the source itself, so XR-certain coincides with plain
//! certain answers — the mode strictly generalises, never disagrees.

use crate::engine::{RepairEngine, RepairOutcome};
use dex_core::govern::{Governor, Interrupt, Verdict};
use dex_core::{Instance, Pool};
use dex_logic::{Query, Setting};
use dex_obs::{JsonValue, Tracer};
use dex_query::{AnswerConfig, AnswerEngine, AnswerError, Answers, GovernedAnswers, Semantics};
use std::fmt;

/// Errors from XR-certain answering.
#[derive(Clone, Debug)]
pub enum XrError {
    /// A per-repair evaluation failed. Cannot be `NoSolutions` for an
    /// actual repair (its chase succeeded); anything else propagates.
    Answer(AnswerError),
    /// The repair search was interrupted before finding any repair, so
    /// there is nothing to intersect over.
    NoRepairs(Option<Interrupt>),
    /// The repair search returned a set violating its own invariants
    /// (an engine bug): intersecting over it would be unsound.
    Corrupt(String),
    /// Exact XR-certain answers were requested over an incomplete
    /// repair set — the intersection is only an upper bound there.
    /// Use [`XrEngine::certain_governed`], which reports the partial
    /// case soundly.
    IncompleteRepairs(Option<Interrupt>),
}

impl fmt::Display for XrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XrError::Answer(e) => write!(f, "repair answering: {e}"),
            XrError::NoRepairs(Some(i)) => {
                write!(f, "repair search interrupted before any repair: {i}")
            }
            XrError::NoRepairs(None) => write!(f, "no repairs found"),
            XrError::Corrupt(msg) => {
                write!(f, "repair search produced an invalid repair set: {msg}")
            }
            XrError::IncompleteRepairs(Some(i)) => write!(
                f,
                "repair set is incomplete ({i}): exact XR-certain answers \
                 need all repairs; use governed answering for a sound partial"
            ),
            XrError::IncompleteRepairs(None) => write!(
                f,
                "repair set is incomplete (a candidate chase exhausted its \
                 budget): exact XR-certain answers need all repairs; use \
                 governed answering for a sound partial"
            ),
        }
    }
}

impl std::error::Error for XrError {}

impl From<AnswerError> for XrError {
    fn from(e: AnswerError) -> XrError {
        XrError::Answer(e)
    }
}

/// The XR answering engine: computes the repairs once (cached with
/// their chase results), then answers any number of queries by
/// intersecting certain answers across them.
pub struct XrEngine<'a> {
    setting: &'a Setting,
    config: AnswerConfig,
    outcome: RepairOutcome,
    tracer: Tracer,
}

impl<'a> XrEngine<'a> {
    /// Runs the repair search (governed by `gov`) and caches the
    /// repairs. Fails only if the search was stopped before finding a
    /// single repair; an incomplete-but-nonempty repair set is usable —
    /// governed answering then reports every tuple as undetermined
    /// rather than proven.
    pub fn new(
        setting: &'a Setting,
        source: &Instance,
        config: AnswerConfig,
        gov: &Governor,
    ) -> Result<XrEngine<'a>, XrError> {
        XrEngine::with_tracer(setting, source, config, gov, Tracer::off())
    }

    /// [`XrEngine::new`] with a tracer attached to the repair search.
    pub fn with_tracer(
        setting: &'a Setting,
        source: &Instance,
        config: AnswerConfig,
        gov: &Governor,
        tracer: Tracer,
    ) -> Result<XrEngine<'a>, XrError> {
        // Thread the tracer into the per-repair answer engines too, so
        // each factor's propagation stages show up under its xr_factor
        // span in the trace.
        let mut config = config;
        config.tracer = tracer.clone();
        let engine = RepairEngine::new(setting, &config.chase_budget)
            .with_pool(pool_of(&config))
            .with_tracer(tracer.clone());
        let outcome = engine.repairs_governed(source, gov);
        if outcome.repairs.is_empty() {
            return Err(XrError::NoRepairs(outcome.interrupt));
        }
        // A corrupted repair set (non-maximal entries, wrong kept sets)
        // would silently poison every intersection below; fail loudly
        // instead.
        outcome.validate(source).map_err(XrError::Corrupt)?;
        Ok(XrEngine {
            setting,
            config,
            outcome,
            tracer,
        })
    }

    /// The cached repair search result.
    pub fn outcome(&self) -> &RepairOutcome {
        &self.outcome
    }

    /// Number of repairs being intersected over.
    pub fn repair_count(&self) -> usize {
        self.outcome.repairs.len()
    }

    /// XR-certain answers: `⋂_repairs certain⇓(Q, repair)`. Requires a
    /// complete repair set (the intersection over a partial set is only
    /// an upper bound) and fails with [`XrError::IncompleteRepairs`]
    /// otherwise; returns the certain answers of each repair's own
    /// answer engine, intersected.
    pub fn certain(&self, q: &Query) -> Result<Answers, XrError> {
        if !self.outcome.complete {
            return Err(XrError::IncompleteRepairs(self.outcome.interrupt.clone()));
        }
        // One span over the whole intersection, one per factor. The
        // engine has no clock of its own, so span timestamps are 0 —
        // the analyzer still recovers the tree shape and counts.
        let sp_intersect = self.tracer.span("xr_intersect", 0);
        let mut acc: Option<Answers> = None;
        for repair in &self.outcome.repairs {
            let sp_factor = self.tracer.span("xr_factor", 0);
            let engine = AnswerEngine::new(self.setting, &repair.kept, self.config.clone())?;
            let result = engine.answers(q, Semantics::Certain);
            sp_factor.close(0);
            let a = result?;
            acc = Some(match acc.take() {
                None => a,
                Some(prev) => prev.intersection(&a).cloned().collect(),
            });
        }
        sp_intersect.close(0);
        Ok(acc.expect("XrEngine holds at least one repair"))
    }

    /// Governed XR-certain answers with sound three-valued partials:
    /// a tuple is proven only when every repair of a *complete* repair
    /// set certified it; refuted as soon as any fully-evaluated repair
    /// rejects it (sound even over a partial repair set — adding
    /// repairs only shrinks the intersection).
    pub fn certain_governed(&self, q: &Query, gov: &Governor) -> Result<GovernedAnswers, XrError> {
        let mut candidates: Option<Answers> = None;
        let mut refuted = Answers::new();
        for repair in &self.outcome.repairs {
            let engine = AnswerEngine::new(self.setting, &repair.kept, self.config.clone())?;
            let g = engine.answers_governed(q, Semantics::Certain, gov)?;
            if g.is_complete() {
                candidates = Some(match candidates.take() {
                    None => g.proven,
                    Some(prev) => {
                        let kept: Answers = prev.intersection(&g.proven).cloned().collect();
                        refuted.extend(prev.difference(&kept).cloned());
                        kept
                    }
                });
                continue;
            }
            // Interrupted inside this repair's evaluation: surviving
            // candidates are undetermined; its own refutations stand.
            let interrupt = g.interrupt.clone();
            let mut undetermined = Answers::new();
            match candidates.take() {
                None => {
                    undetermined.extend(g.proven);
                    undetermined.extend(g.undetermined);
                    refuted.extend(g.refuted);
                }
                Some(prev) => {
                    for tuple in prev {
                        match g.verdict(&tuple) {
                            Verdict::False => {
                                refuted.insert(tuple);
                            }
                            _ => {
                                undetermined.insert(tuple);
                            }
                        }
                    }
                }
            }
            return Ok(GovernedAnswers {
                proven: Answers::new(),
                refuted,
                undetermined,
                default: Verdict::Unknown(
                    interrupt
                        .as_ref()
                        .map(|i| i.reason)
                        .unwrap_or(dex_core::govern::InterruptReason::Cancelled),
                ),
                interrupt,
            });
        }
        let certain = candidates.expect("XrEngine holds at least one repair");
        if self.outcome.complete {
            let mut g = GovernedAnswers::complete(certain);
            g.refuted = refuted;
            return Ok(g);
        }
        // Partial repair set: unexplored repairs can only remove
        // tuples, so the intersection so far is an upper bound —
        // nothing is proven, survivors are undetermined.
        Ok(GovernedAnswers {
            proven: Answers::new(),
            refuted,
            undetermined: certain,
            default: Verdict::Unknown(
                self.outcome
                    .interrupt
                    .as_ref()
                    .map(|i| i.reason)
                    .unwrap_or(dex_core::govern::InterruptReason::Cancelled),
            ),
            interrupt: self.outcome.interrupt.clone(),
        })
    }

    /// A JSON summary of the engine state (repairs + search stats).
    pub fn to_json(&self) -> JsonValue {
        self.outcome.to_json()
    }
}

fn pool_of(config: &AnswerConfig) -> Pool {
    config.pool
}

/// One-shot convenience: the XR-certain answers of `q` for `source`.
pub fn xr_certain_answers(
    setting: &Setting,
    source: &Instance,
    q: &Query,
) -> Result<Answers, XrError> {
    XrEngine::new(
        setting,
        source,
        AnswerConfig::default(),
        &Governor::unlimited(),
    )?
    .certain(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::Value;
    use dex_logic::{parse_instance, parse_query, parse_setting};

    fn keyed() -> Setting {
        parse_setting(
            "source { P/2, R/2 }
             target { F/2, G/2 }
             st {
               dP: P(x,y) -> F(x,y);
               dR: R(x,y) -> G(x,y);
             }
             t { key: F(x,y) & F(x,z) -> y = z; }",
        )
        .unwrap()
    }

    fn c(name: &str) -> Value {
        Value::konst(name)
    }

    #[test]
    fn xr_certain_keeps_unconflicted_facts() {
        let d = keyed();
        // a's F-successor is contested (b vs c); u's G-row is not.
        let s = parse_instance("P(a,b). P(a,c). R(u,v).").unwrap();
        let q = parse_query("Q(x,y) :- G(x,y)").unwrap();
        let ans = xr_certain_answers(&d, &s, &q).unwrap();
        assert_eq!(ans, Answers::from([vec![c("u"), c("v")]]));
        // The contested fact is in no intersection.
        let qf = parse_query("Q(x,y) :- F(x,y)").unwrap();
        let ans = xr_certain_answers(&d, &s, &qf).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn consistent_source_matches_plain_certain() {
        let d = keyed();
        let s = parse_instance("P(a,b). R(u,v).").unwrap();
        let q = parse_query("Q(x,y) :- F(x,y)").unwrap();
        let xr = xr_certain_answers(&d, &s, &q).unwrap();
        let plain = dex_query::answers(&d, &s, &q, Semantics::Certain).unwrap();
        assert_eq!(xr, plain);
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). R(u,v).").unwrap();
        let engine =
            XrEngine::new(&d, &s, AnswerConfig::default(), &Governor::unlimited()).unwrap();
        let q = parse_query("Q(x,y) :- G(x,y)").unwrap();
        let g = engine.certain_governed(&q, &Governor::unlimited()).unwrap();
        assert!(g.is_complete());
        assert_eq!(g.proven, engine.certain(&q).unwrap());
        g.validate().unwrap();
    }

    #[test]
    fn certain_rejects_incomplete_repair_set() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). P(d,e). P(d,f). R(u,v).").unwrap();
        let q = parse_query("Q(x,y) :- G(x,y)").unwrap();
        for fuel in 2u64..7 {
            let gov = Governor::unlimited().with_fuel(fuel);
            let Ok(engine) = XrEngine::new(&d, &s, AnswerConfig::default(), &gov) else {
                continue; // no repair found before the trip
            };
            if engine.outcome().complete {
                continue;
            }
            // Exact intersection over a partial repair set is only an
            // upper bound; certain() must refuse rather than report it.
            assert!(matches!(
                engine.certain(&q),
                Err(XrError::IncompleteRepairs(_))
            ));
        }
    }

    #[test]
    fn interrupted_search_proves_nothing() {
        let d = keyed();
        let s = parse_instance("P(a,b). P(a,c). P(d,e). P(d,f). R(u,v).").unwrap();
        // Enough fuel to find some repairs but not finish the search.
        for fuel in 2u64..7 {
            let gov = Governor::unlimited().with_fuel(fuel);
            let Ok(engine) = XrEngine::new(&d, &s, AnswerConfig::default(), &gov) else {
                continue; // no repair found before the trip
            };
            if engine.outcome().complete {
                continue;
            }
            let q = parse_query("Q(x,y) :- G(x,y)").unwrap();
            let g = engine.certain_governed(&q, &Governor::unlimited()).unwrap();
            assert!(
                g.proven.is_empty(),
                "fuel {fuel}: partial set proved tuples"
            );
            g.validate().unwrap();
        }
    }
}
