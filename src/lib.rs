//! # cwa-dex
//!
//! A Rust implementation of **Hernich & Schweikardt, "CWA-Solutions for
//! Data Exchange Settings with Target Dependencies" (PODS 2007)**: a
//! relational data-exchange engine with labeled nulls, the standard chase
//! and the paper's α-chase, CWA-presolutions and CWA-solutions, cores,
//! and the four closed-world query-answering semantics — plus executable
//! versions of every construction in the paper's proofs (the copying-
//! setting anomaly, the Turing-machine setting `D_halt`, the semigroup
//! setting `D_emb`, the 3-SAT reduction, and path systems).
//!
//! This crate is a facade: it re-exports the workspace crates.
//!
//! ```
//! use cwa_dex::prelude::*;
//!
//! // Example 2.1 of the paper.
//! let setting = parse_setting(
//!     "source { M/2, N/2 }
//!      target { E/2, F/2, G/2 }
//!      st {
//!        d1: M(x1,x2) -> E(x1,x2);
//!        d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2);
//!      }
//!      t {
//!        d3: F(y,x) -> exists z . G(x,z);
//!        d4: F(x,y) & F(x,z) -> y = z;
//!      }").unwrap();
//! let source = parse_instance("M(a,b). N(a,b). N(a,c).").unwrap();
//!
//! // The minimal CWA-solution is the core (Theorem 5.1).
//! let core = core_solution(&setting, &source, &ChaseBudget::default()).unwrap();
//! assert_eq!(core.len(), 3);
//!
//! // Certain answers of a conjunctive query (Theorem 7.6).
//! let q = parse_query("Q(x,y) :- E(x,y)").unwrap();
//! let ans = answers(&setting, &source, &q, Semantics::Certain).unwrap();
//! assert_eq!(ans.len(), 1);
//! ```

pub use dex_chase as chase;
pub use dex_core as core;
pub use dex_cwa as cwa;
pub use dex_datagen as datagen;
pub use dex_logic as logic;
pub use dex_obs as obs;
pub use dex_query as query;
pub use dex_reductions as reductions;
pub use dex_repair as repair;

/// The most common imports in one place.
pub mod prelude {
    pub use dex_chase::{
        alpha_chase, alpha_chase_naive, canonical_presolution, canonical_universal_solution, chase,
        chase_naive, AlphaOutcome, AlphaSource, ChaseBudget, ChaseEngine, ChaseError, ChaseStats,
        FreshAlpha, Justification, TableAlpha,
    };
    pub use dex_core::{
        core, hom_equivalent, isomorphic, Atom, Instance, NullGen, Schema, SourceDelta, Symbol,
        Value,
    };
    pub use dex_cwa::{
        cansol, core_solution, cwa_solution_exists, enumerate_cwa_solutions, is_cwa_presolution,
        is_cwa_solution, is_universal_solution, EnumLimits, SearchLimits,
    };
    pub use dex_logic::{
        is_richly_acyclic, is_weakly_acyclic, parse_delta, parse_dependency, parse_formula,
        parse_instance, parse_query, parse_setting, Query, Setting,
    };
    pub use dex_query::{
        answers, AnswerConfig, AnswerEngine, Answers, EvalEngine, PropagationReport, Semantics,
    };
    pub use dex_repair::{xr_certain_answers, Repair, RepairEngine, RepairOutcome, XrEngine};
}
