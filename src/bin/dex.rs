//! `dex` — a command-line front end for the CWA data-exchange engine.
//!
//! ```text
//! dex analyze   <setting>                      acyclicity + classification
//! dex chase     <setting> <source>             canonical universal solution
//! dex update    <setting> <source> <delta>     incremental re-exchange (resume)
//! dex explain   <setting> <source> [--conflict] chase + justification chains (§4)
//! dex core      <setting> <source>             minimal CWA-solution (Thm 5.1)
//! dex cansol    <setting> <source>             maximal CWA-solution (Prop 5.4)
//! dex check     <setting> <source> <target>    classify a target instance
//! dex answer    <setting> <source> <query> [--semantics ...] [--engine propagate|oracle] [--repair]
//! dex enumerate <setting> <source> [--nulls-only] [--max N]
//! dex repair    <setting> <source>             maximal consistent source subsets
//! dex trace     <trace.jsonl> [--tree] [--json] [--metrics] [--top K]
//! ```
//!
//! `<setting>`, `<source>`, `<target>` and `<query>` are file paths; if a
//! path does not exist the argument itself is parsed as inline DSL text.
//!
//! `DEX_TRACE=<path>` makes `chase`, `explain`, `core`, `answer`,
//! `enumerate` and `repair` write a JSONL event trace of the run (see
//! `dex-obs`); `dex trace <path>` aggregates it into a profile.
//!
//! `core`, `answer` and `enumerate` accept `--threads N` to run their
//! search on a deterministic worker pool (`dex-par`); with no flag the
//! `DEX_THREADS` environment variable decides (default: sequential).
//! Output is byte-identical for every thread count.

use cwa_dex::cwa::maximal_under_image;
use cwa_dex::prelude::*;
use std::process::ExitCode;

fn load(arg: &str) -> String {
    match std::fs::read_to_string(arg) {
        Ok(text) => text,
        Err(_) => arg.to_owned(),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(1)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  dex analyze   <setting>
  dex chase     <setting> <source>
  dex update    <setting> <source> <delta>
  dex explain   <setting> <source> [--conflict]
  dex core      <setting> <source> [--threads N]
  dex cansol    <setting> <source>
  dex check     <setting> <source> <target>
  dex answer    <setting> <source> <query> [--semantics certain|potential|persistent|maybe] [--threads N] [--engine propagate|oracle] [--repair]
  dex enumerate <setting> <source> [--nulls-only] [--max N] [--threads N]
  dex repair    <setting> <source> [--threads N] [--json]
  dex trace     <trace.jsonl> [--tree] [--json] [--metrics] [--top K]

Arguments are file paths, or inline DSL when no such file exists.
`update` chases the source, then applies the delta (`+ P(a).` inserts,
`- Q(b,c).` deletes) by incremental maintenance instead of re-chasing,
and prints the updated target;
--threads defaults to $DEX_THREADS (sequential when unset); results are
identical for every thread count.
`answer --repair` computes XR-certain answers (certain answers
intersected over every maximal consistent subset of the source);
`explain --conflict` prints the provenance-backed conflict witness of an
inconsistent source;
`trace` aggregates a DEX_TRACE=<path> JSONL trace into a profile
(per-phase time, hottest dependencies, governor trips, pool stats);
--tree adds the span waterfall, --metrics the Prometheus-style text
exposition, --json the machine-readable profile."
    );
    ExitCode::from(1)
}

fn parse_setting_arg(arg: &str) -> Result<Setting, String> {
    parse_setting(&load(arg)).map_err(|e| format!("setting: {e}"))
}

fn parse_instance_arg(arg: &str) -> Result<Instance, String> {
    parse_instance(&load(arg)).map_err(|e| format!("instance: {e}"))
}

/// Parses a `--threads` value into a worker pool.
fn parse_threads_arg(it: &mut std::slice::Iter<'_, String>) -> Result<cwa_dex::core::Pool, String> {
    let Some(v) = it.next() else {
        return Err("--threads needs a value".into());
    };
    let n: usize = v
        .parse()
        .map_err(|_| "invalid --threads value".to_owned())?;
    if n == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(cwa_dex::core::Pool::new(n))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match (cmd.as_str(), &args[1..]) {
        ("analyze", [setting]) => cmd_analyze(setting),
        ("chase", [setting, source]) => cmd_chase(setting, source),
        ("update", [setting, source, delta]) => cmd_update(setting, source, delta),
        ("explain", [setting, source, rest @ ..]) => cmd_explain(setting, source, rest),
        ("core", [setting, source, rest @ ..]) => cmd_core(setting, source, rest),
        ("cansol", [setting, source]) => cmd_cansol(setting, source),
        ("check", [setting, source, target]) => cmd_check(setting, source, target),
        ("answer", [setting, source, query, rest @ ..]) => cmd_answer(setting, source, query, rest),
        ("enumerate", [setting, source, rest @ ..]) => cmd_enumerate(setting, source, rest),
        ("repair", [setting, source, rest @ ..]) => cmd_repair(setting, source, rest),
        ("trace", [file, rest @ ..]) => cmd_trace(file, rest),
        ("help" | "--help" | "-h", _) => return usage(),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}

fn cmd_analyze(setting: &str) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    println!("{d}");
    println!("weakly acyclic:  {}", is_weakly_acyclic(&d));
    println!("richly acyclic:  {}", is_richly_acyclic(&d));
    println!("no target deps:  {}", d.has_no_target_deps());
    println!(
        "CanSol class:    {:?} (Proposition 5.4)",
        cwa_dex::cwa::cansol_class(&d)
    );
    println!(
        "s-t tgds: {}   target tgds: {}   egds: {}",
        d.st_tgds.len(),
        d.t_tgds.len(),
        d.egds.len()
    );
    if let Some(ranks) = cwa_dex::logic::position_ranks(&d) {
        let max = ranks.values().copied().max().unwrap_or(0);
        println!("max existential rank: {max} (chase depth stratification)");
    }
    Ok(())
}

fn cmd_chase(setting: &str, source: &str) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let budget = ChaseBudget::default();
    // Provenance is on so an egd conflict comes back with the full
    // witness (trigger, justification chains, source conflict set).
    let out = match ChaseEngine::new(&d, &budget)
        .with_tracer(cwa_dex::obs::Tracer::from_env())
        .with_provenance(true)
        .run(&s)
    {
        Ok(out) => out,
        Err(ChaseError::EgdConflict { witness }) => {
            eprintln!("{witness}");
            return Err("inconsistent source: no solution exists (diagnosis above; \
                 `dex repair` enumerates the maximal consistent subsets)"
                .to_owned());
        }
        Err(e) => return Err(e.to_string()),
    };
    println!("steps: {}", out.steps);
    println!("{}", cwa_dex::logic::instance_to_dsl(&out.target));
    Ok(())
}

fn cmd_update(setting: &str, source: &str, delta: &str) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let delta = parse_delta(&load(delta)).map_err(|e| format!("delta: {e}"))?;
    let budget = ChaseBudget::default();
    let tracer = cwa_dex::obs::Tracer::from_env();
    let engine = ChaseEngine::new(&d, &budget)
        .with_tracer(tracer)
        .with_provenance(true);
    let describe = |e: ChaseError| match e {
        ChaseError::EgdConflict { witness } => {
            eprintln!("{witness}");
            "inconsistent source: no solution exists (diagnosis above; \
             `dex repair` enumerates the maximal consistent subsets)"
                .to_owned()
        }
        e => e.to_string(),
    };
    let prior = engine.run(&s).map_err(describe)?;
    let resumed = engine.resume(&prior, &delta).map_err(describe)?;
    println!(
        "applied: {} insert(s), {} delete(s)",
        delta.inserts.len(),
        delta.deletes.len()
    );
    println!(
        "resume: {} steps, {} atoms retracted, {} re-derived",
        resumed.steps, resumed.stats.atoms_retracted, resumed.stats.atoms_rederived
    );
    println!("{}", cwa_dex::logic::instance_to_dsl(&resumed.target));
    Ok(())
}

fn cmd_explain(setting: &str, source: &str, rest: &[String]) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let mut conflict_mode = false;
    for flag in rest {
        match flag.as_str() {
            "--conflict" => conflict_mode = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let budget = ChaseBudget::default();
    let run = ChaseEngine::new(&d, &budget)
        .with_tracer(cwa_dex::obs::Tracer::from_env())
        .with_provenance(true)
        .run(&s);
    if conflict_mode {
        return match run {
            Ok(_) => {
                println!("consistent: the chase succeeds, no egd conflict");
                Ok(())
            }
            Err(ChaseError::EgdConflict { witness }) => {
                println!("{witness}");
                println!("{}", witness.to_json());
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        };
    }
    let out = run.map_err(|e| e.to_string())?;
    let prov = out
        .provenance
        .as_ref()
        .expect("provenance was enabled on the engine");
    for atom in out.target.sorted_atoms() {
        let chain = prov
            .explain(&atom)
            .ok_or_else(|| format!("no justification chain for {atom}"))?;
        println!("{chain}");
        println!();
    }
    prov.verify_justified(&out.target)?;
    println!(
        "-- every atom justified ({} derivations, {} egd merges)",
        prov.len(),
        prov.merges().len()
    );
    Ok(())
}

fn cmd_core(setting: &str, source: &str, rest: &[String]) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let mut pool = cwa_dex::core::Pool::from_env();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => pool = parse_threads_arg(&mut it)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // One tracer per run: `from_env` truncates the DEX_TRACE file, so
    // the chase, the core search and the pool must share a clone.
    let tracer = cwa_dex::obs::Tracer::from_env();
    if tracer.enabled() {
        cwa_dex::core::set_pool_tracer(tracer.clone());
    }
    let out = ChaseEngine::new(&d, &ChaseBudget::default())
        .with_tracer(tracer.clone())
        .run(&s)
        .map_err(|e| e.to_string())?;
    let gov = cwa_dex::core::govern::Governor::unlimited().with_tracer(tracer);
    let gc = cwa_dex::core::core_parallel_governed(&out.target, &gov, &pool);
    println!("{}", cwa_dex::logic::instance_to_dsl(&gc.instance));
    Ok(())
}

fn cmd_cansol(setting: &str, source: &str) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    match cansol(&d, &s, &ChaseBudget::default()).map_err(|e| e.to_string())? {
        Some(t) => {
            println!("{}", cwa_dex::logic::instance_to_dsl(&t));
            Ok(())
        }
        None => Err(
            "setting is in neither class of Proposition 5.4 — no CanSol guaranteed \
                     (use `enumerate` to explore the CWA-solution space)"
                .to_owned(),
        ),
    }
}

fn cmd_check(setting: &str, source: &str, target: &str) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let t = parse_instance_arg(target)?;
    let budget = ChaseBudget::default();
    let limits = SearchLimits::default();
    let solution = d.is_solution(&s, &t);
    println!("solution:        {solution}");
    if !solution {
        println!("universal:       false");
        println!("CWA-solution:    false");
        return Ok(());
    }
    let universal = is_universal_solution(&d, &s, &t, &budget).map_err(|e| e.to_string())?;
    let presolution = is_cwa_presolution(&d, &s, &t, &limits);
    println!("universal:       {universal}");
    match presolution {
        Some(p) => println!("CWA-presolution: {p}"),
        None => println!("CWA-presolution: unknown (search limit)"),
    }
    match (universal, presolution) {
        (u, Some(p)) => println!("CWA-solution:    {} (Theorem 4.8)", u && p),
        _ => println!("CWA-solution:    unknown"),
    }
    Ok(())
}

fn cmd_answer(setting: &str, source: &str, query: &str, rest: &[String]) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let q = parse_query(&load(query)).map_err(|e| format!("query: {e}"))?;
    let mut semantics = Semantics::Certain;
    let mut pool = cwa_dex::core::Pool::from_env();
    let mut eval_engine = EvalEngine::default();
    let mut repair_mode = false;
    let mut semantics_set = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--repair" => repair_mode = true,
            "--semantics" => {
                let Some(v) = it.next() else {
                    return Err("--semantics needs a value".into());
                };
                semantics = match v.as_str() {
                    "certain" => Semantics::Certain,
                    "potential" => Semantics::PotentialCertain,
                    "persistent" => Semantics::PersistentMaybe,
                    "maybe" => Semantics::Maybe,
                    other => return Err(format!("unknown semantics `{other}`")),
                };
                semantics_set = true;
            }
            "--threads" => pool = parse_threads_arg(&mut it)?,
            "--engine" => {
                let Some(v) = it.next() else {
                    return Err("--engine needs a value".into());
                };
                eval_engine = match v.as_str() {
                    "propagate" => EvalEngine::Propagate,
                    "oracle" => EvalEngine::Oracle,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // One tracer per run: chase spans, propagation-stage spans, repair
    // search and pool events all append to the same DEX_TRACE file.
    let tracer = cwa_dex::obs::Tracer::from_env();
    if tracer.enabled() {
        cwa_dex::core::set_pool_tracer(tracer.clone());
    }
    let config = AnswerConfig {
        pool,
        engine: eval_engine,
        tracer: tracer.clone(),
        ..AnswerConfig::default()
    };
    if repair_mode {
        if semantics_set && semantics != Semantics::Certain {
            return Err(
                "--repair computes XR-certain answers; only `--semantics certain` applies".into(),
            );
        }
        let gov = cwa_dex::core::govern::Governor::unlimited().with_tracer(tracer.clone());
        let xr = XrEngine::with_tracer(&d, &s, config, &gov, tracer).map_err(|e| e.to_string())?;
        if !xr.outcome().complete {
            // The search was undecided (a candidate chase exhausted its
            // budget), so maximal repairs may be missing and the
            // intersection is only an upper bound. certain_governed
            // reports that soundly: nothing proven, survivors
            // undetermined — never print the upper bound as exact.
            let g = xr.certain_governed(&q, &gov).map_err(|e| e.to_string())?;
            if q.arity() == 0 {
                // An empty upper bound refutes the boolean query;
                // a non-empty one decides nothing.
                println!(
                    "{}",
                    if g.proven.is_empty() && g.undetermined.is_empty() {
                        "false"
                    } else {
                        "unknown"
                    }
                );
            } else {
                for tuple in &g.undetermined {
                    let row: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
                    println!("({})", row.join(", "));
                }
                println!(
                    "-- {} candidate XR-certain answers over {} repairs \
                     (INCOMPLETE: repair search undecided, upper bound only)",
                    g.undetermined.len(),
                    xr.repair_count()
                );
            }
            return Ok(());
        }
        let ans = xr.certain(&q).map_err(|e| e.to_string())?;
        if q.arity() == 0 {
            println!("{}", !ans.is_empty());
        } else {
            for tuple in &ans {
                let row: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
                println!("({})", row.join(", "));
            }
            println!(
                "-- {} XR-certain answers over {} repairs",
                ans.len(),
                xr.repair_count()
            );
        }
        return Ok(());
    }
    let engine = AnswerEngine::new(&d, &s, config).map_err(|e| e.to_string())?;
    let ans = engine.answers(&q, semantics).map_err(|e| e.to_string())?;
    if q.arity() == 0 {
        println!("{}", !ans.is_empty());
    } else {
        for tuple in &ans {
            let row: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
            println!("({})", row.join(", "));
        }
        println!("-- {} answers under {semantics:?}", ans.len());
    }
    // Diagnostics go to stderr so the answer stream stays machine-parsable
    // (boolean queries print exactly `true`/`false` on stdout).
    if let Some(r) = engine.last_propagation() {
        eprintln!(
            "-- propagation: {} nulls ({} merged, {} inert), residual {} of {} valuations, {} diseqs{}",
            r.nulls,
            r.merged,
            r.inert,
            r.residual_valuations,
            r.oracle_valuations,
            r.diseqs,
            if r.fell_back { " [fell back to oracle]" } else { "" },
        );
    }
    Ok(())
}

fn cmd_enumerate(setting: &str, source: &str, rest: &[String]) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let mut limits = EnumLimits::default();
    let mut pool = cwa_dex::core::Pool::from_env();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--nulls-only" => limits.nulls_only = true,
            "--max" => {
                let Some(v) = it.next() else {
                    return Err("--max needs a value".into());
                };
                limits.max_results = v.parse().map_err(|_| "invalid --max value".to_owned())?;
            }
            "--threads" => pool = parse_threads_arg(&mut it)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let tracer = cwa_dex::obs::Tracer::from_env();
    if tracer.enabled() {
        cwa_dex::core::set_pool_tracer(tracer.clone());
    }
    let opts = cwa_dex::cwa::EnumOpts::seq()
        .with_pool(pool)
        .with_tracer(tracer);
    let (sols, stats) = cwa_dex::cwa::enumerate_cwa_solutions_opts(&d, &s, &limits, &opts);
    let maximal = maximal_under_image(&sols);
    for t in &sols {
        let is_max = maximal.iter().any(|m| isomorphic(m, t));
        println!(
            "{}{}",
            if is_max { "[maximal] " } else { "          " },
            cwa_dex::logic::instance_to_dsl(t)
        );
    }
    println!(
        "-- {} CWA-solutions up to renaming of nulls ({} scripts explored{})",
        sols.len(),
        stats.scripts_explored,
        if stats.truncated { ", TRUNCATED" } else { "" }
    );
    Ok(())
}

fn cmd_repair(setting: &str, source: &str, rest: &[String]) -> Result<(), String> {
    let d = parse_setting_arg(setting)?;
    let s = parse_instance_arg(source)?;
    let mut pool = cwa_dex::core::Pool::from_env();
    let mut json = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => pool = parse_threads_arg(&mut it)?,
            "--json" => json = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let engine = RepairEngine::new(&d, &ChaseBudget::default())
        .with_pool(pool)
        .with_tracer(cwa_dex::obs::Tracer::from_env());
    let outcome = engine.repairs(&s);
    outcome.validate(&s)?;
    if json {
        use cwa_dex::obs::JsonValue;
        // The summary counts plus the repairs themselves (as the list of
        // removed source atoms each — kept = source minus removed).
        let removed = JsonValue::Arr(
            outcome
                .repairs
                .iter()
                .map(|r| {
                    JsonValue::Arr(
                        r.removed
                            .iter()
                            .map(|a| JsonValue::str(a.to_string()))
                            .collect(),
                    )
                })
                .collect(),
        );
        println!("{}", outcome.to_json().with("removed", removed));
        return Ok(());
    }
    for (i, repair) in outcome.repairs.iter().enumerate() {
        let removed: Vec<String> = repair.removed.iter().map(|a| a.to_string()).collect();
        println!(
            "repair {i}: kept {} of {} atoms, removed {{ {} }}",
            repair.kept.len(),
            s.len(),
            removed.join(", ")
        );
    }
    let st = &outcome.stats;
    println!(
        "-- {} maximal repair(s){}; {} candidates chased, {} conflicts extracted, {} pruned",
        outcome.repairs.len(),
        if outcome.complete {
            ""
        } else {
            " (INCOMPLETE)"
        },
        st.candidates_chased,
        st.conflicts_extracted,
        st.pruned_superset + st.pruned_duplicate,
    );
    Ok(())
}

fn cmd_trace(file: &str, rest: &[String]) -> Result<(), String> {
    let mut tree = false;
    let mut json = false;
    let mut metrics = false;
    let mut top = 10usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tree" => tree = true,
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--top" => {
                let Some(v) = it.next() else {
                    return Err("--top needs a value".into());
                };
                top = v.parse().map_err(|_| "invalid --top value".to_owned())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let text =
        std::fs::read_to_string(file).map_err(|e| format!("cannot read trace {file}: {e}"))?;
    let lines = cwa_dex::obs::parse_trace(&text)?;
    let profile = cwa_dex::obs::TraceProfile::from_lines(&lines);
    if json {
        println!("{}", profile.to_json());
        return Ok(());
    }
    if metrics {
        print!("{}", profile.metrics.expose_text());
        return Ok(());
    }
    print!("{}", profile.render_text(top, tree));
    Ok(())
}
