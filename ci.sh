#!/usr/bin/env bash
# Hermetic CI for the workspace: no network, no registry — the committed
# Cargo.lock must resolve to path-local crates only (--locked --offline
# fail loudly if it can't).
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline --workspace

echo "== test (locked, offline) =="
cargo test -q --locked --offline --workspace

echo "== fault-injection smoke (fixed seeds; replay any failure with DEX_FAULT_SEED) =="
# The governed suite already sweeps 64 seeds under `cargo test` above;
# here two fixed seeds re-run it through the DEX_FAULT_SEED replay path
# so the single-seed reproduction machinery itself stays exercised.
for seed in 7 41; do
  DEX_FAULT_SEED=$seed cargo test -q --locked --offline -p dex-bench --test governed
done

echo "== bench smoke (tiny sizes; any panic fails the run) =="
# Includes the chase naive-vs-delta ablation, whose ChaseStats invariant
# checks panic on violation — so stats consistency gates CI here too.
DEX_BENCH_SMOKE=1 cargo bench -q --locked --offline -p dex-bench
test -f BENCH_chase.json || { echo "chase bench did not write BENCH_chase.json"; exit 1; }

echo "CI OK"
