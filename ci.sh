#!/usr/bin/env bash
# Hermetic CI for the workspace: no network, no registry — the committed
# Cargo.lock must resolve to path-local crates only (--locked --offline
# fail loudly if it can't).
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline --workspace

echo "== test (locked, offline) =="
cargo test -q --locked --offline --workspace

echo "== fault-injection smoke (fixed seeds; replay any failure with DEX_FAULT_SEED) =="
# The governed suite already sweeps 64 seeds under `cargo test` above;
# here two fixed seeds re-run it through the DEX_FAULT_SEED replay path
# so the single-seed reproduction machinery itself stays exercised.
for seed in 7 41; do
  DEX_FAULT_SEED=$seed cargo test -q --locked --offline -p dex-bench --test governed
  DEX_FAULT_SEED=$seed cargo test -q --locked --offline -p dex-bench --test repair
done

echo "== trace smoke (JSONL trace reconciles with ChaseStats exactly) =="
# The test itself parses every trace line and asserts the event counts
# match the run's counters one-to-one; DEX_TRACE pins the output so a
# failing run leaves the stream behind for inspection.
mkdir -p target
# Absolute path: cargo runs the test binary from the package dir, not the
# workspace root.
DEX_TRACE="$PWD/target/trace-smoke.jsonl" cargo test -q --locked --offline -p dex-bench --test trace_smoke
test -s target/trace-smoke.jsonl || { echo "trace smoke left no target/trace-smoke.jsonl"; exit 1; }

echo "== trace analyze smoke (dex trace profiles a real DEX_TRACE run) =="
# A traced chase through the real CLI, then the analyzer over its output:
# the profile must carry the phase table and reconcile the chase counters
# (one chase_started/chase_completed pair on a clean run).
TRACE_SETTING='source { M/2, N/2 } target { E/2, F/2, G/2 } st { d1: M(x1,x2) -> E(x1,x2); d2: N(x,y) -> exists z1,z2 . E(x,z1) & F(x,z2); } t { d3: F(y,x) -> exists z . G(x,z); d4: F(x,y) & F(x,z) -> y = z; }'
DEX=target/release/dex
DEX_TRACE="$PWD/target/trace-analyze.jsonl" "$DEX" chase "$TRACE_SETTING" 'M(a,b). N(a,b). N(a,c).' >/dev/null
test -s target/trace-analyze.jsonl || { echo "trace analyze smoke left no target/trace-analyze.jsonl"; exit 1; }
TRACE_OUT=$("$DEX" trace target/trace-analyze.jsonl --tree)
grep -q "phases (by total time):" <<< "$TRACE_OUT" \
  || { echo "trace analyze smoke: no phase table in dex trace output"; exit 1; }
grep -q "span tree:" <<< "$TRACE_OUT" \
  || { echo "trace analyze smoke: --tree emitted no waterfall"; exit 1; }
TRACE_JSON=$("$DEX" trace target/trace-analyze.jsonl --json)
grep -q '"chase_started":1' <<< "$TRACE_JSON" \
  || { echo "trace analyze smoke: profile does not reconcile chase_started"; exit 1; }
grep -q '"chase_completed":1' <<< "$TRACE_JSON" \
  || { echo "trace analyze smoke: profile does not reconcile chase_completed"; exit 1; }
grep -q '"truncated":false' <<< "$TRACE_JSON" \
  || { echo "trace analyze smoke: clean trace flagged as truncated"; exit 1; }
TRACE_METRICS=$("$DEX" trace target/trace-analyze.jsonl --metrics)
grep -q "# TYPE" <<< "$TRACE_METRICS" \
  || { echo "trace analyze smoke: --metrics emitted no exposition text"; exit 1; }

echo "== parallel smoke (DEX_THREADS=2 and 8; determinism mismatch fails) =="
# The differential suite asserts parallel ≡ sequential per seed; running
# it under DEX_THREADS=2 and 8 also routes the Pool::from_env() path
# through real worker pools (the suite forces the inline threshold to
# zero, so workers are exercised even on paper-sized inputs). The par
# scaling bench re-checks byte-identical output at 1/2/4/8 threads on
# every measured configuration (its ≥2× speedup gate only arms on
# machines reporting ≥4 CPUs, outside smoke).
DEX_THREADS=2 cargo test -q --locked --offline -p dex-bench --test par
DEX_THREADS=8 cargo test -q --locked --offline -p dex-bench --test par
# Smoke bench dumps go to target/bench-smoke — never the workspace root,
# where the committed full-run baselines live.
DEX_BENCH_SMOKE=1 DEX_BENCH_OUT="$PWD/target/bench-smoke" \
  cargo bench -q --locked --offline -p dex-bench --bench par
test -f target/bench-smoke/BENCH_par.json || { echo "par bench did not write target/bench-smoke/BENCH_par.json"; exit 1; }
grep -q '"cpus"' BENCH_par.json || { echo "committed BENCH_par.json does not record the CPU count"; exit 1; }
# The ≥2× speedup gate silently never arming (e.g. a baseline recorded on
# a 1-CPU machine) must be loud: the dump records whether it fired, and a
# committed unarmed baseline is flagged on every CI run.
grep -q '"gate_armed"' BENCH_par.json || { echo "committed BENCH_par.json does not record gate_armed"; exit 1; }
if grep -q '"gate_armed": false' BENCH_par.json; then
  echo "GATE UNARMED: committed BENCH_par.json was recorded without the >=2x speedup gate (cpus < 4 or smoke run)"
fi

echo "== query bench smoke (propagation vs oracle agreement asserted) =="
# The queries bench asserts propagation == oracle on the paper's worked
# example and on the small keyed configuration as part of every run —
# a disagreement panics and fails CI here.
DEX_BENCH_SMOKE=1 DEX_BENCH_OUT="$PWD/target/bench-smoke" \
  cargo bench -q --locked --offline -p dex-bench --bench queries
test -f target/bench-smoke/BENCH_query.json || { echo "queries bench did not write target/bench-smoke/BENCH_query.json"; exit 1; }
grep -q '"example_2_1_agreement": true' target/bench-smoke/BENCH_query.json \
  || { echo "query bench smoke did not record propagation-vs-oracle agreement"; exit 1; }
grep -q '"propagation"' BENCH_query.json || { echo "committed BENCH_query.json does not record propagation reports"; exit 1; }

echo "== repair smoke (inconsistent source degrades gracefully end-to-end) =="
# A key-conflicted source must make `dex chase` fail with a diagnosis,
# while `dex repair` and `dex answer --repair` still return validated
# results — the graceful-degradation path exercised through the real CLI.
REPAIR_SETTING='source { P/2, R/2 } target { F/2, G/2 } st { dP: P(x,y) -> F(x,y); dR: R(x,y) -> G(x,y); } t { key: F(x,y) & F(x,z) -> y = z; }'
REPAIR_SOURCE='P(a,b). P(a,c). R(u,v).'
DEX=target/release/dex
if "$DEX" chase "$REPAIR_SETTING" "$REPAIR_SOURCE" >/dev/null 2>&1; then
  echo "repair smoke: chase unexpectedly succeeded on a conflicted source"; exit 1
fi
# Outputs are captured, not piped into grep: `grep -q` closing the pipe
# early makes the binary's next println panic on EPIPE (and the chase is
# *supposed* to exit nonzero, which pipefail would also trip on).
CHASE_OUT=$("$DEX" chase "$REPAIR_SETTING" "$REPAIR_SOURCE" 2>&1 || true)
grep -q "source conflict set" <<< "$CHASE_OUT" \
  || { echo "repair smoke: chase failure lacks the conflict witness"; exit 1; }
REPAIR_OUT=$("$DEX" repair "$REPAIR_SETTING" "$REPAIR_SOURCE")
grep -q "2 maximal repair(s)" <<< "$REPAIR_OUT" \
  || { echo "repair smoke: dex repair did not find both repairs"; exit 1; }
ANSWER_OUT=$("$DEX" answer "$REPAIR_SETTING" "$REPAIR_SOURCE" 'Q(x,y) :- G(x,y)' --repair)
grep -q "(u, v)" <<< "$ANSWER_OUT" \
  || { echo "repair smoke: dex answer --repair lost the unconflicted row"; exit 1; }
# The repair bench asserts guided < naive candidate counts on every run.
DEX_BENCH_SMOKE=1 DEX_BENCH_OUT="$PWD/target/bench-smoke" \
  cargo bench -q --locked --offline -p dex-bench --bench repair
test -f target/bench-smoke/BENCH_repair.json || { echo "repair bench did not write target/bench-smoke/BENCH_repair.json"; exit 1; }
grep -q '"guidance_margin"' BENCH_repair.json || { echo "committed BENCH_repair.json does not record the guidance margin"; exit 1; }

echo "== incremental smoke (dex update round-trip + differential seed + bench) =="
# `dex update` applies a delta by incremental maintenance; the target it
# prints must carry exactly the rows of a from-scratch exchange of the
# updated source. Output captured, not piped (EPIPE, see repair smoke).
INC_SETTING='source { P/2 } target { F/2, G/2 } st { d1: P(x,y) -> exists k . F(k,x) & G(k,y); } t { key: F(k,x) & F(k,y) -> x = y; }'
UPDATE_OUT=$("$DEX" update "$INC_SETTING" 'P(a,b). P(c,d).' '+ P(e,f). - P(c,d).')
grep -q "applied: 1 insert(s), 1 delete(s)" <<< "$UPDATE_OUT" \
  || { echo "incremental smoke: dex update did not report the applied delta"; exit 1; }
grep -q "atoms retracted" <<< "$UPDATE_OUT" \
  || { echo "incremental smoke: dex update did not report resume counters"; exit 1; }
grep -q "F(" <<< "$UPDATE_OUT" \
  || { echo "incremental smoke: dex update printed no target instance"; exit 1; }
# One fixed seed of the 64-seed resume-vs-rechase differential suite,
# through the DEX_FAULT_SEED replay path (the full sweep already ran
# under `cargo test` above).
DEX_FAULT_SEED=7 cargo test -q --locked --offline -p dex-bench --test incremental
# The incremental bench asserts resumed-vs-rechased target cardinalities
# agree on every run; its >=10x speedup gate arms on full runs only.
DEX_BENCH_SMOKE=1 DEX_BENCH_OUT="$PWD/target/bench-smoke" \
  cargo bench -q --locked --offline -p dex-bench --bench incremental
test -f target/bench-smoke/BENCH_inc.json || { echo "incremental bench did not write target/bench-smoke/BENCH_inc.json"; exit 1; }
grep -q '"resume_vs_rechase"' BENCH_inc.json || { echo "committed BENCH_inc.json does not record resume-vs-rechase rows"; exit 1; }

echo "== bench smoke (tiny sizes; any panic fails the run) =="
# Includes the chase naive-vs-delta ablation, whose ChaseStats invariant
# checks panic on violation — so stats consistency gates CI here too.
# Smoke mode runs 3 timed iterations, so per-bench "p95_ns" is null in
# BENCH_chase.json (full runs with >= 10 iterations emit numbers);
# consumers must tolerate both shapes.
DEX_BENCH_SMOKE=1 DEX_BENCH_OUT="$PWD/target/bench-smoke" \
  cargo bench -q --locked --offline -p dex-bench
test -f target/bench-smoke/BENCH_chase.json || { echo "chase bench did not write target/bench-smoke/BENCH_chase.json"; exit 1; }
test -f target/bench-smoke/BENCH_obs.json || { echo "obs bench did not write target/bench-smoke/BENCH_obs.json"; exit 1; }
# The committed tracing-overhead baseline must carry an armed <5%
# NullCollector gate — an unarmed (smoke) baseline reads as unverified.
grep -q '"null_overhead_vs_off"' BENCH_obs.json || { echo "committed BENCH_obs.json does not record the NullCollector overhead"; exit 1; }
grep -q '"gate_armed": true' BENCH_obs.json || { echo "committed BENCH_obs.json was recorded without the <5% overhead gate"; exit 1; }

echo "== committed baselines untouched =="
# The smoke stages above must never clobber the committed full-run
# baselines (that was a real bug: smoke dumps used to overwrite them).
git diff --exit-code -- BENCH_par.json BENCH_chase.json BENCH_query.json BENCH_repair.json BENCH_obs.json BENCH_inc.json \
  || { echo "a bench stage modified a committed BENCH_*.json baseline"; exit 1; }

echo "CI OK"
