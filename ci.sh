#!/usr/bin/env bash
# Hermetic CI for the workspace: no network, no registry — the committed
# Cargo.lock must resolve to path-local crates only (--locked --offline
# fail loudly if it can't).
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline --workspace

echo "== test (locked, offline) =="
cargo test -q --locked --offline --workspace

echo "== bench smoke (tiny sizes; any panic fails the run) =="
DEX_BENCH_SMOKE=1 cargo bench -q --locked --offline -p dex-bench

echo "CI OK"
